#![forbid(unsafe_code)]
//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the tiny, fully deterministic subset of the `rand` 0.8 API it
//! actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over half-open integer ranges, and
//! [`Rng::gen_bool`].
//!
//! The generator is splitmix64 — statistically fine for workload
//! generation and differential testing, and identical on every platform
//! and in every run, which is all the callers require. The streams differ
//! from upstream `rand`'s ChaCha-based `StdRng`, so generated workloads
//! are stable *within* this repository rather than byte-compatible with
//! historical upstream output.

use std::ops::Range;

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Copy {
    /// Draw a value in `[lo, hi)` from raw generator output.
    fn sample_range(raw: u64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(raw: u64, lo: Self, hi: Self) -> Self {
                let span = (hi as u64) - (lo as u64);
                lo + (raw % span) as $t
            }
        }
    )*};
}
macro_rules! impl_sample_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(raw: u64, lo: Self, hi: Self) -> Self {
                let span = (hi as i64 - lo as i64) as u64;
                (lo as i64 + (raw % span) as i64) as $t
            }
        }
    )*};
}
impl_sample_unsigned!(u8, u16, u32, u64, usize);
impl_sample_signed!(i8, i16, i32, i64);

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform + PartialOrd>(&mut self, range: Range<T>) -> T {
        assert!(range.start < range.end, "gen_range called with an empty range");
        T::sample_range(self.next_u64(), range.start, range.end)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// The subset of `rand::SeedableRng` the workspace uses.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic splitmix64 generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15) }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-5i32..6);
            assert!((-5..6).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
