//! Criterion benchmarks for block translation and end-to-end emulation
//! throughput under the three engines (the machinery behind Figs. 8–10).

use criterion::{criterion_group, criterion_main, Criterion};
use ldbt_compiler::{link::build_arm_image, Options};
use ldbt_core::experiment::{learn_all, loo_rules};
use ldbt_dbt::engine::{RunOutcome, Translator};
use ldbt_dbt::Engine;
use ldbt_workloads::{benchmark, source, Workload};
use std::hint::black_box;
use std::sync::Arc;

fn bench_translation(c: &mut Criterion) {
    let all = learn_all(&Options::o2()).unwrap();
    let rules = Arc::new(loo_rules(&all, "mcf"));
    let image = build_arm_image(&source(benchmark("mcf").unwrap(), Workload::Test), &Options::o2())
        .unwrap();
    let mut g = c.benchmark_group("emulate_mcf_test");
    g.sample_size(20);
    g.bench_function("tcg", |b| {
        b.iter(|| {
            let mut e = Engine::new(black_box(&image), Translator::Tcg);
            assert_eq!(e.run(3_000_000_000), RunOutcome::Halted);
            e.stats.exec.host_instrs
        })
    });
    g.bench_function("rules", |b| {
        b.iter(|| {
            let mut e = Engine::new(black_box(&image), Translator::Rules(Arc::clone(&rules)));
            assert_eq!(e.run(3_000_000_000), RunOutcome::Halted);
            e.stats.exec.host_instrs
        })
    });
    g.bench_function("jit", |b| {
        b.iter(|| {
            let mut e = Engine::new(black_box(&image), Translator::Jit);
            assert_eq!(e.run(3_000_000_000), RunOutcome::Halted);
            e.stats.exec.host_instrs
        })
    });
    g.finish();

    // Pure translation (no execution): decode+lower one hot block.
    let mut mem = ldbt_isa::Memory::new();
    image.load_into(&mut mem);
    let pc = image.func_addrs[1].1;
    let block = ldbt_dbt::tcg::decode_block(&mem, pc);
    c.bench_function("translate_block/tcg", |b| {
        b.iter(|| {
            let t = ldbt_dbt::tcg::translate_block(black_box(&mem), black_box(&block));
            ldbt_dbt::backend::lower_block(&t).code.len()
        })
    });
    c.bench_function("translate_block/rules", |b| {
        b.iter(|| {
            ldbt_dbt::rules::lower_block_with_rules(black_box(&mem), black_box(&block), &rules)
                .code
                .len()
        })
    });
    c.bench_function("translate_block/jit", |b| {
        b.iter(|| {
            let t = ldbt_dbt::tcg::translate_block(black_box(&mem), black_box(&block));
            let o = ldbt_dbt::jit::optimize_block(&t);
            ldbt_dbt::backend::lower_block(&o).code.len()
        })
    });
}

criterion_group!(benches, bench_translation);
criterion_main!(benches);
