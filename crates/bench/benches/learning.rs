//! Criterion benchmarks for the rule-learning pipeline (Table 1's
//! time column) and rule lookup (paper §4's hash scheme).

use criterion::{criterion_group, criterion_main, Criterion};
use ldbt_compiler::Options;
use ldbt_learn::cache::VerifyCache;
use ldbt_learn::pipeline::{learn_from_source, learn_from_source_cached, LearnConfig};
use ldbt_workloads::{benchmark, source, Workload};
use std::hint::black_box;

fn bench_learning(c: &mut Criterion) {
    let mcf = source(benchmark("mcf").unwrap(), Workload::Ref);
    c.bench_function("learn_rules/mcf", |b| {
        b.iter(|| learn_from_source("mcf", black_box(&mcf), &Options::o2()).unwrap())
    });
    let libq = source(benchmark("libquantum").unwrap(), Workload::Ref);
    c.bench_function("learn_rules/libquantum", |b| {
        b.iter(|| learn_from_source("libquantum", black_box(&libq), &Options::o2()).unwrap())
    });
}

/// Sequential vs parallel learning over the whole suite's heaviest
/// stand-in (each iteration uses a fresh memo cache, so the comparison
/// measures real verification work, not memoized replay). The separate
/// `memoized` entry shows the cache win alone: a second learn of the
/// same program against a warm shared cache.
fn bench_scaling(c: &mut Criterion) {
    let gcc = source(benchmark("gcc").unwrap(), Workload::Ref);
    let threads = ldbt_learn::configured_threads();
    let mut g = c.benchmark_group("learn_scaling");
    g.bench_function("sequential", |b| {
        let config = LearnConfig { threads: 1, ..LearnConfig::default() };
        b.iter(|| {
            learn_from_source_cached(
                "gcc",
                black_box(&gcc),
                &Options::o2(),
                &config,
                &mut VerifyCache::new(),
            )
            .unwrap()
        })
    });
    g.bench_function(&format!("parallel_x{threads}"), |b| {
        let config = LearnConfig::default();
        b.iter(|| {
            learn_from_source_cached(
                "gcc",
                black_box(&gcc),
                &Options::o2(),
                &config,
                &mut VerifyCache::new(),
            )
            .unwrap()
        })
    });
    g.bench_function("memoized", |b| {
        let config = LearnConfig::default();
        let mut cache = VerifyCache::new();
        learn_from_source_cached("gcc", &gcc, &Options::o2(), &config, &mut cache).unwrap();
        b.iter(|| {
            learn_from_source_cached("gcc", black_box(&gcc), &Options::o2(), &config, &mut cache)
                .unwrap()
        })
    });
    g.finish();
}

fn bench_lookup(c: &mut Criterion) {
    use ldbt_arm::{ArmInstr, ArmReg, Cond, Operand2};
    let report =
        learn_from_source("gcc", &source(benchmark("gcc").unwrap(), Workload::Ref), &Options::o2())
            .unwrap();
    let rules = report.rules;
    let seq = [
        ArmInstr::cmp(ArmReg::R6, Operand2::Reg(ArmReg::R4)),
        ArmInstr::B { offset: 1, cond: Cond::Lt },
    ];
    c.bench_function("rule_lookup/hash", |b| b.iter(|| rules.lookup(black_box(&seq))));
    c.bench_function("rule_lookup/linear", |b| b.iter(|| rules.lookup_linear(black_box(&seq))));
}

criterion_group!(benches, bench_learning, bench_scaling, bench_lookup);
criterion_main!(benches);
