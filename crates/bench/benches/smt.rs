//! Criterion benchmarks for the SMT substrate (the verification step the
//! paper measures as ~95% of learning time).

use criterion::{criterion_group, criterion_main, Criterion};
use ldbt_smt::{check_equiv, term::TermPool};
use std::hint::black_box;

fn bench_equiv(c: &mut Criterion) {
    c.bench_function("equiv/syntactic_lea", |b| {
        b.iter(|| {
            let mut p = TermPool::new();
            let x = p.var("x", 32);
            let y = p.var("y", 32);
            let imm = p.var("imm", 32);
            let s = p.add(x, y);
            let guest = p.sub(s, imm);
            let ni = p.neg(imm);
            let s2 = p.add(y, x);
            let host = p.add(s2, ni);
            black_box(check_equiv(&mut p, guest, host).is_proved())
        })
    });
    c.bench_function("equiv/sat_mul3", |b| {
        b.iter(|| {
            let mut p = TermPool::new();
            let x = p.var("x", 16);
            let three = p.constant(3, 16);
            let lhs = p.mul(x, three);
            let one = p.constant(1, 16);
            let sh = p.shl(x, one);
            let rhs = p.add(sh, x);
            black_box(check_equiv(&mut p, lhs, rhs).is_proved())
        })
    });
    c.bench_function("equiv/refuted_random", |b| {
        b.iter(|| {
            let mut p = TermPool::new();
            let x = p.var("x", 32);
            let one = p.constant(1, 32);
            let y = p.add(x, one);
            black_box(!check_equiv(&mut p, x, y).is_proved())
        })
    });
}

criterion_group!(benches, bench_equiv);
criterion_main!(benches);
