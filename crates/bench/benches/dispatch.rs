//! `dispatch_throughput`: end-to-end engine wall-clock on a loop-heavy
//! workload under the three translators.
//!
//! This is the A/B harness for the execution hot path: block chaining,
//! the indirect-branch target cache, the word-wide guest-memory fast
//! path, zero-allocation dispatch, and profile-guided superblocks. Set
//! `LDBT_NOCHAIN=1` / `LDBT_NOSB=1` to measure the unchained or
//! region-free dispatcher for comparison; results are recorded in
//! `results/dispatch_throughput.txt` (see EXPERIMENTS.md). The CI gate
//! runs the fixed-cost `dispatch_gate` binary instead (best-of-5 min).

use criterion::{criterion_group, criterion_main, Criterion};
use ldbt_compiler::{link::build_arm_image, Options};
use ldbt_dbt::engine::{RunOutcome, Translator};
use ldbt_dbt::Engine;
use ldbt_learn::pipeline::learn_from_source;
use std::hint::black_box;
use std::sync::Arc;

/// Loop-heavy source: a short hot inner loop re-dispatched hundreds of
/// thousands of times, with enough array traffic that the guest-memory
/// path matters. Translation cost is negligible by design.
const SRC: &str = "
int a[64];
int main() {
  int s = 0;
  for (int i = 0; i < 64; i += 1) { a[i] = i * 7 + 1; }
  for (int i = 0; i < 3000; i += 1) {
    for (int j = 0; j < 64; j += 1) {
      s = s + a[j];
      s = s ^ (j & 7);
    }
  }
  return s & 0xffff;
}";

const FUEL: u64 = 3_000_000_000;

fn bench_dispatch(c: &mut Criterion) {
    let image = build_arm_image(SRC, &Options::o2()).unwrap();
    let rules =
        Arc::new(learn_from_source("dispatch", SRC, &Options::o2()).expect("learning runs").rules);
    let mut g = c.benchmark_group("dispatch_throughput");
    g.sample_size(10);
    g.bench_function("tcg", |b| {
        b.iter(|| {
            let mut e = Engine::new(black_box(&image), Translator::Tcg);
            assert_eq!(e.run(FUEL), RunOutcome::Halted);
            e.stats.exec.host_instrs
        })
    });
    g.bench_function("rules", |b| {
        b.iter(|| {
            let mut e = Engine::new(black_box(&image), Translator::Rules(Arc::clone(&rules)));
            assert_eq!(e.run(FUEL), RunOutcome::Halted);
            e.stats.exec.host_instrs
        })
    });
    g.bench_function("jit", |b| {
        b.iter(|| {
            let mut e = Engine::new(black_box(&image), Translator::Jit);
            assert_eq!(e.run(FUEL), RunOutcome::Halted);
            e.stats.exec.host_instrs
        })
    });
    // Ablation row: rules engine with superblock formation disabled
    // (`LDBT_NOSB=1` equivalent), isolating the region layer's gain.
    g.bench_function("rules_nosb", |b| {
        b.iter(|| {
            let mut e = Engine::new(black_box(&image), Translator::Rules(Arc::clone(&rules)))
                .with_superblocks(None);
            assert_eq!(e.run(FUEL), RunOutcome::Halted);
            e.stats.exec.host_instrs
        })
    });
    g.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
