//! Figure 9: speedups with GCC-style guest binaries (rules still learned
//! from LLVM-style compilations — the compiler-insensitivity experiment).

use ldbt_bench::{hr, learn_everything};
use ldbt_core::experiment::{geomean, speedups};

fn main() {
    let all = learn_everything();
    let rows = speedups(&all, &ldbt_compiler::Options::gcc());
    println!("Figure 9. Speedup over the TCG baseline (guest built GCC-style, -O2;");
    println!("          rules learned from LLVM-style binaries)");
    hr(72);
    println!(
        "{:<12} {:>11} {:>9} | {:>10} {:>8}",
        "bench", "rules/test", "jit/test", "rules/ref", "jit/ref"
    );
    hr(72);
    for r in &rows {
        println!(
            "{:<12} {:>10.2}x {:>8.2}x | {:>9.2}x {:>7.2}x",
            r.name, r.rules_test, r.jit_test, r.rules_ref, r.jit_ref
        );
    }
    hr(72);
    println!(
        "{:<12} {:>10.2}x {:>8.2}x | {:>9.2}x {:>7.2}x   (paper ref: rules 1.21x)",
        "geomean",
        geomean(rows.iter().map(|r| r.rules_test)),
        geomean(rows.iter().map(|r| r.jit_test)),
        geomean(rows.iter().map(|r| r.rules_ref)),
        geomean(rows.iter().map(|r| r.jit_ref)),
    );
}
