//! Figure 12: length distribution of hit rules.

use ldbt_bench::{hr, learn_everything};
use ldbt_core::experiment::{hit_length_distribution, speedups};

fn main() {
    let all = learn_everything();
    let rows = speedups(&all, &ldbt_compiler::Options::o2());
    let dist = hit_length_distribution(&rows);
    println!("Figure 12. Length distribution of hit translation rules (ref)");
    hr(70);
    println!(
        "{:<12} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "bench", "len1", "len2", "len3", "len4", "len5", "len6+"
    );
    hr(70);
    for (name, d) in &dist {
        println!(
            "{:<12} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}%",
            name,
            d[0] * 100.0,
            d[1] * 100.0,
            d[2] * 100.0,
            d[3] * 100.0,
            d[4] * 100.0,
            d[5] * 100.0
        );
    }
    hr(70);
    println!("(paper: hits with >2 guest instructions are common; most lengths < 6)");
}
