//! `serve_throughput`: concurrent multi-tenant translation throughput.
//!
//! The serving claim (DESIGN.md §15): tenants share one immutable rule
//! generation behind an atomic cell and contend on nothing else, so
//! aggregate guest-instruction throughput should scale with tenant
//! count until the machine runs out of cores. This binary measures
//! that: it prepares a fixed program mix once, then serves it to 1, 2,
//! 4, and 8 concurrent tenants, reporting best-of-N aggregate
//! guest-instrs/sec per tenant count (best-of-N **min** wall-clock for
//! the same reason as `dispatch_gate`: noise only ever adds time).
//!
//! Output, one line per tenant count (the recorded format of
//! `results/serve_throughput.txt`):
//!
//! ```text
//! serve_throughput tenants=4 best_ms=812.503 guest_instrs=93902864 ginstrs_per_sec=115.6M scale_vs_1=3.41x
//! ```
//!
//! `--smoke` is the CI gate: solo vs `LDBT_TENANTS` (default 2)
//! concurrent tenants, asserting aggregate throughput scales by at
//! least 1.5x. On hosts with fewer than 4 cores the gate is vacuous
//! (tenants would time-slice one core), so it skips with a notice.
//!
//! Rules come from the persistent database when `LDBT_RULEDB` points at
//! a loadable one (the warm-start path — no learning at all), otherwise
//! they are learned from the mix programs' sources on the spot.

use ldbt_compiler::Options;
use ldbt_core::serve::{prepare, serve, ServeProgram};
use ldbt_dbt::env::tenants_from_env;
use ldbt_dbt::RuleCell;
use ldbt_learn::pipeline::learn_from_source;
use ldbt_learn::RuleSet;
use ldbt_workloads::{benchmark, source, Workload};
use std::sync::Arc;
use std::time::Instant;

/// The served program mix: loop-heavy suite programs, `test` workloads
/// (enough dynamic instructions to dominate translation time, small
/// enough that 8 tenants x the mix stays in CI budget).
const MIX: &[&str] = &["mcf", "libquantum", "bzip2", "sjeng"];

/// Best-of-N runs per tenant count.
const RUNS: usize = 3;

/// The scaling floor the smoke gate asserts (aggregate throughput at
/// `LDBT_TENANTS` tenants vs solo).
const SMOKE_FLOOR: f64 = 1.5;

fn mix_rules() -> RuleSet {
    if let Some(path) = ldbt_learn::db::env_path() {
        match ldbt_learn::db::load(&path) {
            Ok(db) => {
                eprintln!(
                    "serve_throughput: warm rules from {} ({} rules)",
                    path.display(),
                    db.rules.len()
                );
                return db.rules;
            }
            Err(e) => eprintln!(
                "serve_throughput: ignoring rule database {}: {e}; learning fresh",
                path.display()
            ),
        }
    }
    let mut rules = RuleSet::new();
    for name in MIX {
        let b = benchmark(name).expect("suite program");
        let src = source(b, Workload::Ref);
        rules.merge(&learn_from_source(name, &src, &Options::o2()).expect("learning").rules);
    }
    rules
}

/// Serve the mix to `tenants` tenants `RUNS` times; return (best
/// wall-clock ms, aggregate guest instructions). The instruction count
/// is identical across repeats — serving is deterministic — so min
/// time is max throughput.
fn measure(programs: &[ServeProgram], rules: &RuleSet, tenants: usize) -> (f64, u64) {
    let mut best_ms = f64::INFINITY;
    let mut guest_instrs = 0;
    for _ in 0..RUNS {
        let cell = Arc::new(RuleCell::new(rules.clone()));
        let t0 = Instant::now();
        let report = serve(programs, tenants, &cell);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        best_ms = best_ms.min(ms);
        guest_instrs = report.total_guest_instrs();
    }
    (best_ms, guest_instrs)
}

fn row(programs: &[ServeProgram], rules: &RuleSet, tenants: usize, solo: Option<f64>) -> f64 {
    let (best_ms, guest_instrs) = measure(programs, rules, tenants);
    let per_sec = guest_instrs as f64 / (best_ms / 1e3);
    let scale = solo.map_or(1.0, |s| per_sec / s);
    println!(
        "serve_throughput tenants={tenants} best_ms={best_ms:.3} guest_instrs={guest_instrs} \
         ginstrs_per_sec={:.1}M scale_vs_1={scale:.2}x",
        per_sec / 1e6
    );
    per_sec
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if smoke && cores < 4 {
        println!("serve_throughput smoke skipped: {cores} cores < 4 (scaling gate needs real parallelism)");
        return;
    }
    println!("serve_throughput cores={cores} mix={} runs={RUNS} workload=test", MIX.join(","));
    let rules = mix_rules();
    let programs = prepare(MIX, Workload::Test, &Options::o2()).expect("mix builds");
    if smoke {
        let solo = row(&programs, &rules, 1, None);
        let tenants = tenants_from_env();
        let multi = row(&programs, &rules, tenants, Some(solo));
        let scale = multi / solo;
        assert!(
            scale >= SMOKE_FLOOR,
            "serve throughput did not scale: {tenants} tenants reached {scale:.2}x solo (floor {SMOKE_FLOOR}x)"
        );
        println!("serve_throughput smoke ok: {tenants} tenants at {scale:.2}x solo throughput");
        return;
    }
    let solo = row(&programs, &rules, 1, None);
    for tenants in [2usize, 4, 8] {
        row(&programs, &rules, tenants, Some(solo));
    }
}
