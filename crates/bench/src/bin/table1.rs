//! Table 1: per-benchmark learning statistics.

use ldbt_bench::{deterministic_output, hr, learn_everything, table1_row};
use ldbt_compiler::Options;
use ldbt_core::experiment::{loo_rules, table1};
use ldbt_core::workloads::Workload;
use ldbt_core::{report, run_benchmark, EngineKind};
use std::time::Duration;

fn main() {
    let all = learn_everything();
    let rows = table1(&all);
    let deterministic = deterministic_output();
    println!("Table 1. Learning results (synthetic SPEC CINT2006 stand-ins)");
    hr(149);
    println!(
        "{:<11} {:>3} {:>5} | {:>5} {:>4} {:>4} | {:>5} {:>5} {:>6} | {:>4} {:>4} {:>4} {:>5} | {:>6} {:>9} {:>9} {:>5} {:>5} | {:>6} {:>4} {:>4}",
        "bench", "PL", "LoC", "CI", "PI", "MB", "Num", "Name", "FailG", "Rg", "Mm", "Br", "Other", "#Rules", "time(ms)", "ms/rule", "vfy%", "hit%", "wd-chk", "quar", "rpr"
    );
    hr(149);
    let mut tot = [0usize; 14];
    let mut wd_tot = (0u64, 0u64, 0u64);
    let mut bench_runs = Vec::new();
    let mut learn_stats = Vec::new();
    for (b, lines, s) in &rows {
        let mut s = s.clone();
        if deterministic {
            s.learn_time = Duration::ZERO;
            s.verify_time = Duration::ZERO;
            // Memo traffic depends on whether `LDBT_RULEDB` warm-started
            // the verify cache (a warm boot is ~100% hits); zero it so a
            // warm and a fresh run print byte-identical tables — the
            // tier-1 warm-start gate compares exactly that.
            s.cache_hits = 0;
            s.cache_misses = 0;
        }
        // A rules-engine run on the test workload surfaces the runtime
        // fault-containment counters (nonzero only with LDBT_WATCHDOG).
        let rules = loo_rules(&all, b.name);
        let run =
            run_benchmark(b.name, Workload::Test, EngineKind::Rules, &Options::o2(), Some(&rules));
        wd_tot.0 += run.stats.watchdog_checks();
        wd_tot.1 += run.stats.quarantined_rules();
        wd_tot.2 += run.stats.wd_repaired();
        let wd =
            (run.stats.watchdog_checks(), run.stats.quarantined_rules(), run.stats.wd_repaired());
        println!("{}", table1_row(b.name, if b.cpp { "C++" } else { "C" }, *lines, &s, wd));
        for (i, v) in [
            s.total,
            s.prep_ci,
            s.prep_pi,
            s.prep_mb,
            s.par_num,
            s.par_name,
            s.par_failg,
            s.ver_rg,
            s.ver_mm,
            s.ver_br,
            s.ver_other,
            s.rules,
            s.cache_hits,
            s.cache_misses,
        ]
        .into_iter()
        .enumerate()
        {
            tot[i] += v;
        }
        bench_runs.push(run);
        learn_stats.push(s);
    }
    hr(149);
    let total = tot[0] as f64;
    println!(
        "preparation failures: {:.0}%   parameterization failures: {:.0}%   verification failures: {:.0}%   yield: {:.0}%",
        (tot[1] + tot[2] + tot[3]) as f64 / total * 100.0,
        (tot[4] + tot[5] + tot[6]) as f64 / total * 100.0,
        (tot[7] + tot[8] + tot[9] + tot[10]) as f64 / total * 100.0,
        tot[11] as f64 / total * 100.0,
    );
    println!("(paper: 43% / 19% / 14% / 24% yield; verification dominates learning time)");
    let learn_total: f64 = learn_stats.iter().map(|s| s.learn_time.as_secs_f64()).sum();
    let verify_share: f64 = if learn_total > 0.0 {
        learn_stats.iter().map(|s| s.verify_time.as_secs_f64()).sum::<f64>() / learn_total
    } else {
        0.0
    };
    println!("verification share of learning time: {:.0}% (paper: ~95%)", verify_share * 100.0);
    let queries = tot[12] + tot[13];
    if queries > 0 {
        println!(
            "verify memo cache: {} hits / {} unique signatures verified ({:.0}% hit rate, shared across programs)",
            tot[12],
            tot[13],
            tot[12] as f64 / queries as f64 * 100.0,
        );
    }
    println!(
        "watchdog cross-checks: {} performed, {} rules quarantined, {} rules repaired (enable with LDBT_WATCHDOG=on|N; fault injection via LDBT_FAULT; repair via LDBT_REPAIR)",
        wd_tot.0, wd_tot.1, wd_tot.2,
    );
    println!(
        "threads: {} (override with LDBT_THREADS; 1 = sequential)",
        ldbt_core::configured_threads()
    );
    if let Some(p) = report::write_if_configured(&bench_runs, &learn_stats) {
        eprintln!("run report: {}", p.display());
    }
}
