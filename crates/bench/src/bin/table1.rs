//! Table 1: per-benchmark learning statistics.

use ldbt_bench::{hr, learn_everything};
use ldbt_compiler::Options;
use ldbt_core::experiment::{loo_rules, table1};
use ldbt_core::workloads::Workload;
use ldbt_core::{run_benchmark, EngineKind};

fn main() {
    let all = learn_everything();
    let rows = table1(&all);
    println!("Table 1. Learning results (synthetic SPEC CINT2006 stand-ins)");
    hr(144);
    println!(
        "{:<11} {:>3} {:>5} | {:>5} {:>4} {:>4} | {:>5} {:>5} {:>6} | {:>4} {:>4} {:>4} {:>5} | {:>6} {:>9} {:>9} {:>5} {:>5} | {:>6} {:>4}",
        "bench", "PL", "LoC", "CI", "PI", "MB", "Num", "Name", "FailG", "Rg", "Mm", "Br", "Other", "#Rules", "time(ms)", "ms/rule", "vfy%", "hit%", "wd-chk", "quar"
    );
    hr(144);
    let mut tot = [0usize; 14];
    let mut wd_tot = (0u64, 0u64);
    for (b, lines, s) in &rows {
        let vfy_share = if s.learn_time.as_secs_f64() > 0.0 {
            s.verify_time.as_secs_f64() / s.learn_time.as_secs_f64() * 100.0
        } else {
            0.0
        };
        // A rules-engine run on the test workload surfaces the runtime
        // fault-containment counters (nonzero only with LDBT_WATCHDOG).
        let rules = loo_rules(&all, b.name);
        let run =
            run_benchmark(b.name, Workload::Test, EngineKind::Rules, &Options::o2(), Some(&rules));
        wd_tot.0 += run.stats.watchdog_checks;
        wd_tot.1 += run.stats.quarantined_rules;
        println!(
            "{:<11} {:>3} {:>5} | {:>5} {:>4} {:>4} | {:>5} {:>5} {:>6} | {:>4} {:>4} {:>4} {:>5} | {:>6} {:>9.2} {:>9.3} {:>5.1} {:>5.1} | {:>6} {:>4}",
            b.name,
            if b.cpp { "C++" } else { "C" },
            lines,
            s.prep_ci, s.prep_pi, s.prep_mb,
            s.par_num, s.par_name, s.par_failg,
            s.ver_rg, s.ver_mm, s.ver_br, s.ver_other,
            s.rules,
            s.learn_time.as_secs_f64() * 1e3,
            if s.rules > 0 { s.learn_time.as_secs_f64() * 1e3 / s.rules as f64 } else { 0.0 },
            vfy_share,
            s.cache_hit_rate() * 100.0,
            run.stats.watchdog_checks,
            run.stats.quarantined_rules,
        );
        for (i, v) in [
            s.total,
            s.prep_ci,
            s.prep_pi,
            s.prep_mb,
            s.par_num,
            s.par_name,
            s.par_failg,
            s.ver_rg,
            s.ver_mm,
            s.ver_br,
            s.ver_other,
            s.rules,
            s.cache_hits,
            s.cache_misses,
        ]
        .into_iter()
        .enumerate()
        {
            tot[i] += v;
        }
    }
    hr(144);
    let total = tot[0] as f64;
    println!(
        "preparation failures: {:.0}%   parameterization failures: {:.0}%   verification failures: {:.0}%   yield: {:.0}%",
        (tot[1] + tot[2] + tot[3]) as f64 / total * 100.0,
        (tot[4] + tot[5] + tot[6]) as f64 / total * 100.0,
        (tot[7] + tot[8] + tot[9] + tot[10]) as f64 / total * 100.0,
        tot[11] as f64 / total * 100.0,
    );
    println!("(paper: 43% / 19% / 14% / 24% yield; verification dominates learning time)");
    let verify_share: f64 = rows.iter().map(|(_, _, s)| s.verify_time.as_secs_f64()).sum::<f64>()
        / rows.iter().map(|(_, _, s)| s.learn_time.as_secs_f64()).sum::<f64>();
    println!("verification share of learning time: {:.0}% (paper: ~95%)", verify_share * 100.0);
    let queries = tot[12] + tot[13];
    if queries > 0 {
        println!(
            "verify memo cache: {} hits / {} unique signatures verified ({:.0}% hit rate, shared across programs)",
            tot[12],
            tot[13],
            tot[12] as f64 / queries as f64 * 100.0,
        );
    }
    println!(
        "watchdog cross-checks: {} performed, {} rules quarantined (enable with LDBT_WATCHDOG=on|N; fault injection via LDBT_FAULT)",
        wd_tot.0, wd_tot.1,
    );
    println!(
        "threads: {} (override with LDBT_THREADS; 1 = sequential)",
        ldbt_core::configured_threads()
    );
}
