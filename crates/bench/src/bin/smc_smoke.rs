//! `smc_smoke`: translation-cache coherence gate for self-modifying code.
//!
//! Runs the self-patching loop of `ldbt_workloads::asm::smc_image` and
//! prints only guest-visible state — the final registers and the
//! patched body word — so `scripts/tier1.sh` can byte-compare two runs:
//!
//! * default: every engine (tcg / jit / rules) with coherence on; the
//!   binary asserts each run is bit-identical to the ARM interpreter
//!   and actually took SMC invalidations;
//! * `LDBT_NOSMC=1`: coherence is off, so translated code would run
//!   stale — the binary falls back to the ARM interpreter (the forced
//!   fallback for uncoherent caches; the watchdog cannot substitute
//!   here because it only samples rule-covered blocks).
//!
//! Both modes must print the same bytes: the guest-visible outcome of a
//! self-modifying program must not depend on the coherence knob, only
//! *how* it is reached does.

use ldbt_arm::{ArmMachine, ArmReg, ArmStop};
use ldbt_dbt::engine::{RunOutcome, Translator};
use ldbt_dbt::{env, Engine};
use ldbt_isa::Width;
use ldbt_learn::RuleSet;
use ldbt_workloads::asm::{smc_image, SMC_BODY_WORD, SMC_RESULT};
use std::sync::Arc;

const FUEL: u64 = 200_000_000;

fn main() {
    let img = smc_image();
    let body = img.base + 4 * SMC_BODY_WORD;

    // Reference: the ARM interpreter, which reads code from memory every
    // step and is trivially coherent.
    let mut m = ArmMachine::new();
    img.load_into(&mut m.state.mem);
    m.state.regs[15] = img.entry;
    assert_eq!(m.run(FUEL), ArmStop::Halt, "interpreter did not halt");
    let want_regs = m.state.regs;
    let want_body = m.state.mem.read(body, Width::W32);
    assert_eq!(want_regs[0], SMC_RESULT, "interpreter result drifted");

    if env::smc_from_env() {
        for (name, translator) in [
            ("tcg", Translator::Tcg),
            ("jit", Translator::Jit),
            ("rules", Translator::Rules(Arc::new(RuleSet::new()))),
        ] {
            let mut e = Engine::new(&img, translator);
            assert_eq!(e.run(FUEL), RunOutcome::Halted, "{name}: did not halt");
            for r in ArmReg::ALL {
                if r != ArmReg::Pc {
                    assert_eq!(
                        e.guest_reg(r),
                        want_regs[r.index()],
                        "{name}: {r:?} diverged from the interpreter"
                    );
                }
            }
            assert_eq!(e.guest_mem(body), want_body, "{name}: body word diverged");
            assert!(
                e.stats.smc_invalidations() > 0,
                "{name}: self-modifying loop ran without any cache invalidation"
            );
        }
    }
    // Guest-visible lines only — identical whether the state above came
    // from coherent engines or the interpreter fallback.
    println!("smc_smoke r0={:#010x} body={want_body:#010x}", want_regs[0]);
    for r in ArmReg::ALL {
        if r != ArmReg::Pc {
            println!("smc_smoke reg {:?}={:#010x}", r, want_regs[r.index()]);
        }
    }
    println!("smc_smoke ok");
}
