//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. duplicate-rule selection: shortest-host (paper §6.1) vs first-found,
//! 2. rule lookup: opcode-mean hash (paper §4) vs linear scan,
//! 3. condition codes: lazy host-flag save (paper §5) vs skipping
//!    flag-live-out rules,
//! 4. initial-mapping tries: the paper's 5 swept over 1..8.

use ldbt_bench::{hr, learn_everything};
use ldbt_compiler::Options;
use ldbt_core::experiment::{geomean, loo_rules};
use ldbt_core::{run_benchmark, EngineKind};
use ldbt_dbt::engine::Translator;
use ldbt_dbt::Engine;
use ldbt_learn::pipeline::learn_from_source_with_tries;
use ldbt_learn::RuleSet;
use ldbt_workloads::{source, Workload, SUITE};
use std::sync::Arc;

const TARGETS: [&str; 4] = ["mcf", "hmmer", "libquantum", "astar"];

fn run_with(name: &str, translator: Translator) -> ldbt_dbt::DbtStats {
    let b = ldbt_workloads::benchmark(name).unwrap();
    let src = source(b, Workload::Ref);
    let image = ldbt_compiler::link::build_arm_image(&src, &Options::o2()).unwrap();
    let mut e = Engine::new(&image, translator);
    assert_eq!(e.run(3_000_000_000), ldbt_dbt::engine::RunOutcome::Halted);
    e.stats
}

fn main() {
    let all = learn_everything();

    println!("Ablation 1: duplicate-rule selection policy (ref workload)");
    hr(72);
    for name in TARGETS {
        let shortest = loo_rules(&all, name);
        let mut first_found = RuleSet::new_first_found();
        // Re-insert in the same order; first-found keeps the first host
        // sequence seen instead of the shortest.
        for p in all.iter().filter(|p| p.name != name) {
            for r in p.rules.iter() {
                first_found.insert(r.clone());
            }
        }
        let base = run_benchmark(name, Workload::Ref, EngineKind::Tcg, &Options::o2(), None);
        let a =
            run_benchmark(name, Workload::Ref, EngineKind::Rules, &Options::o2(), Some(&shortest));
        let b = run_benchmark(
            name,
            Workload::Ref,
            EngineKind::Rules,
            &Options::o2(),
            Some(&first_found),
        );
        println!(
            "{:<12} shortest-host {:>5.2}x   first-found {:>5.2}x",
            name,
            a.speedup_over(&base),
            b.speedup_over(&base)
        );
    }

    println!();
    println!("Ablation 2: rule lookup scheme (translation-time probes, mcf ref)");
    hr(72);
    {
        let rules = loo_rules(&all, "mcf");
        // Count probes for every block of the program once.
        let b = ldbt_workloads::benchmark("mcf").unwrap();
        let src = source(b, Workload::Ref);
        let image = ldbt_compiler::link::build_arm_image(&src, &Options::o2()).unwrap();
        let mut mem = ldbt_isa::Memory::new();
        image.load_into(&mut mem);
        let mut hash_probes = 0usize;
        let mut linear_probes = 0usize;
        for (_, addr) in &image.func_addrs {
            let mut pc = *addr;
            loop {
                let block = ldbt_dbt::tcg::decode_block(&mem, pc);
                if block.instrs.is_empty() {
                    break;
                }
                let n = block.instrs.len();
                for i in 0..n {
                    for len in (1..=n - i).rev() {
                        let seq = &block.instrs[i..i + len];
                        hash_probes += rules.candidates(seq).count();
                        linear_probes += rules.lookup_linear(seq).1;
                    }
                }
                if !matches!(block.instrs.last(), Some(ldbt_arm::ArmInstr::B { .. })) {
                    break;
                }
                pc += 4 * n as u32;
            }
        }
        println!("hash-bucketed probes: {hash_probes:>8}");
        println!(
            "linear-scan probes:   {linear_probes:>8}  ({:.1}x more)",
            linear_probes as f64 / hash_probes.max(1) as f64
        );
    }

    println!();
    println!("Ablation 3: condition-code strategy (ref workload)");
    hr(72);
    for name in TARGETS {
        let rules = Arc::new(loo_rules(&all, name));
        let base = run_with(name, Translator::Tcg);
        let lazy = run_with(name, Translator::Rules(Arc::clone(&rules)));
        let strict = run_with(name, Translator::RulesNoLazyFlags(rules));
        println!(
            "{:<12} lazy-flag-save {:>5.2}x (Dp {:>4.1}%)   no-lazy {:>5.2}x (Dp {:>4.1}%)",
            name,
            base.total_cycles() as f64 / lazy.total_cycles() as f64,
            lazy.dynamic_coverage() * 100.0,
            base.total_cycles() as f64 / strict.total_cycles() as f64,
            strict.dynamic_coverage() * 100.0,
        );
    }

    println!();
    println!("Ablation 4: initial-mapping tries (rules learned, whole suite)");
    hr(72);
    for tries in [1usize, 2, 3, 5, 8] {
        let mut total = 0usize;
        for b in &SUITE {
            let src = source(b, Workload::Ref);
            let r = learn_from_source_with_tries(b.name, &src, &Options::o2(), tries).unwrap();
            total += r.stats.rules;
        }
        println!("max tries {tries}: {total} rules learned");
    }

    println!();
    let rows: Vec<f64> = TARGETS
        .iter()
        .map(|name| {
            let rules = loo_rules(&all, name);
            let base = run_benchmark(name, Workload::Ref, EngineKind::Tcg, &Options::o2(), None);
            let ours =
                run_benchmark(name, Workload::Ref, EngineKind::Rules, &Options::o2(), Some(&rules));
            ours.speedup_over(&base)
        })
        .collect();
    println!("sanity geomean over ablation targets: {:.3}x", geomean(rows.into_iter()));
}
