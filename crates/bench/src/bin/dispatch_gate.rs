//! `dispatch_gate`: the CI-gated dispatch-throughput measurement.
//!
//! Criterion's `dispatch` bench is the exploratory harness; this binary
//! is the *gate*: one process, the same loop-heavy workload, best-of-N
//! wall-clock per engine, machine-readable output for
//! `scripts/tier1.sh` to compare against the recorded row in
//! `results/dispatch_throughput.txt`. The container is single-CPU and
//! noisy — medians swing ~25% run to run — so best-of-N **min** is the
//! gated statistic: noise only ever adds time, so the minimum is the
//! stable estimate of the true cost.
//!
//! Output, one line per engine (milliseconds, three decimals; the
//! memory-access and region-pass counters are appended after
//! `host_instrs` so the awk field positions tier1.sh gates on are
//! stable):
//!
//! ```text
//! dispatch_gate tcg min_ms=131.204 host_instrs=310081086 mem_loads=... mem_stores=... ra_promoted=... fuse_elim=...
//! ```
//!
//! Ablation rows isolate each layer's contribution: `rules_nosb` is the
//! rules engine with superblock formation disabled, `rules_nofuse` with
//! guest memory access fusion disabled, and `rules_nora` with region
//! register allocation disabled.

use ldbt_compiler::{link::build_arm_image, Options};
use ldbt_dbt::engine::{RunOutcome, Translator};
use ldbt_dbt::Engine;
use ldbt_learn::pipeline::learn_from_source;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Same workload as the Criterion bench (crates/bench/benches/dispatch.rs).
const SRC: &str = "
int a[64];
int main() {
  int s = 0;
  for (int i = 0; i < 64; i += 1) { a[i] = i * 7 + 1; }
  for (int i = 0; i < 3000; i += 1) {
    for (int j = 0; j < 64; j += 1) {
      s = s + a[j];
      s = s ^ (j & 7);
    }
  }
  return s & 0xffff;
}";

const FUEL: u64 = 3_000_000_000;
const RUNS: usize = 5;

type MakeEngine = Box<dyn Fn() -> Engine>;

fn main() {
    let image = build_arm_image(SRC, &Options::o2()).unwrap();
    let rules =
        Arc::new(learn_from_source("dispatch", SRC, &Options::o2()).expect("learning runs").rules);
    let engines: Vec<(&str, MakeEngine)> = vec![
        (
            "tcg",
            Box::new({
                let image = image.clone();
                move || Engine::new(&image, Translator::Tcg)
            }),
        ),
        (
            "rules",
            Box::new({
                let (image, rules) = (image.clone(), Arc::clone(&rules));
                move || Engine::new(&image, Translator::Rules(Arc::clone(&rules)))
            }),
        ),
        (
            "jit",
            Box::new({
                let image = image.clone();
                move || Engine::new(&image, Translator::Jit)
            }),
        ),
        (
            "rules_nosb",
            Box::new({
                let (image, rules) = (image.clone(), Arc::clone(&rules));
                move || {
                    Engine::new(&image, Translator::Rules(Arc::clone(&rules)))
                        .with_superblocks(None)
                }
            }),
        ),
        (
            "rules_nofuse",
            Box::new({
                let (image, rules) = (image.clone(), Arc::clone(&rules));
                move || {
                    Engine::new(&image, Translator::Rules(Arc::clone(&rules))).with_fusion(false)
                }
            }),
        ),
        (
            "rules_nora",
            Box::new({
                let (image, rules) = (image.clone(), Arc::clone(&rules));
                move || {
                    Engine::new(&image, Translator::Rules(Arc::clone(&rules)))
                        .with_region_alloc(false)
                }
            }),
        ),
    ];
    for (name, make) in engines {
        let mut best = f64::INFINITY;
        let mut host_instrs = 0;
        let mut mem = (0, 0);
        let mut passes = (0, 0);
        for _ in 0..RUNS {
            let mut e = make();
            let t0 = Instant::now();
            assert_eq!(e.run(black_box(FUEL)), RunOutcome::Halted, "{name}");
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            best = best.min(ms);
            host_instrs = e.stats.exec.host_instrs;
            mem = (e.stats.exec.mem_loads, e.stats.exec.mem_stores);
            passes = (e.stats.ra_promoted(), e.stats.fuse_elim());
        }
        println!(
            "dispatch_gate {name} min_ms={best:.3} host_instrs={host_instrs} \
             mem_loads={} mem_stores={} ra_promoted={} fuse_elim={}",
            mem.0, mem.1, passes.0, passes.1
        );
    }
}
