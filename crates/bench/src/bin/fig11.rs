//! Figure 11: static and dynamic rule coverage.

use ldbt_bench::{hr, learn_everything};
use ldbt_core::experiment::{coverage, speedups};

fn main() {
    let all = learn_everything();
    let rows = speedups(&all, &ldbt_compiler::Options::o2());
    let cov = coverage(&rows);
    println!("Figure 11. Static (Sp) and dynamic (Dp) coverage of the rules (ref)");
    hr(44);
    println!("{:<12} {:>8} {:>8}", "bench", "Sp", "Dp");
    hr(44);
    let (mut ss, mut ds) = (0.0, 0.0);
    for (name, s, d) in &cov {
        println!("{:<12} {:>7.1}% {:>7.1}%", name, s * 100.0, d * 100.0);
        ss += s;
        ds += d;
    }
    hr(44);
    let n = cov.len() as f64;
    println!(
        "{:<12} {:>7.1}% {:>7.1}%   (paper: >60% both on average)",
        "average",
        ss / n * 100.0,
        ds / n * 100.0
    );
}
