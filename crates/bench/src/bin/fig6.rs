//! Figure 6: rules learned per optimization level.

use ldbt_bench::hr;
use ldbt_core::experiment::figure6;

fn main() {
    let rows = figure6().expect("suite compiles");
    println!("Figure 6. Sensitivity of learning on optimization levels (#rules)");
    hr(60);
    println!("{:<12} {:>6} {:>6} {:>6} {:>6}", "bench", "-O0", "-O1", "-O2", "-O3");
    hr(60);
    let mut sums = [0usize; 4];
    for (name, counts) in &rows {
        println!(
            "{:<12} {:>6} {:>6} {:>6} {:>6}",
            name, counts[0], counts[1], counts[2], counts[3]
        );
        for i in 0..4 {
            sums[i] += counts[i];
        }
    }
    hr(60);
    println!("{:<12} {:>6} {:>6} {:>6} {:>6}", "total", sums[0], sums[1], sums[2], sums[3]);
    println!("(paper: similar rule counts across levels, often more at higher levels)");
}
