//! Figure 8: speedups over QEMU-style TCG, LLVM-style guest binaries.

use ldbt_bench::{hr, learn_everything};
use ldbt_core::experiment::{geomean, speedups};

fn main() {
    let all = learn_everything();
    let rows = speedups(&all, &ldbt_compiler::Options::o2());
    println!("Figure 8. Speedup over the TCG baseline (guest built LLVM-style, -O2)");
    hr(72);
    println!(
        "{:<12} {:>11} {:>9} | {:>10} {:>8}",
        "bench", "rules/test", "jit/test", "rules/ref", "jit/ref"
    );
    hr(72);
    for r in &rows {
        println!(
            "{:<12} {:>10.2}x {:>8.2}x | {:>9.2}x {:>7.2}x",
            r.name, r.rules_test, r.jit_test, r.rules_ref, r.jit_ref
        );
    }
    hr(72);
    println!(
        "{:<12} {:>10.2}x {:>8.2}x | {:>9.2}x {:>7.2}x   (paper: 1.07x 0.39x | 1.25x 1.02x)",
        "geomean",
        geomean(rows.iter().map(|r| r.rules_test)),
        geomean(rows.iter().map(|r| r.jit_test)),
        geomean(rows.iter().map(|r| r.rules_ref)),
        geomean(rows.iter().map(|r| r.jit_ref)),
    );
}
