//! Figure 7: the learning-sensitivity demonstration.

use ldbt_core::experiment::figure7;

fn main() {
    let (o0_rules, o0_fails, o2_rules, o2_fails) = figure7().expect("probe compiles");
    println!("Figure 7. Different optimization levels for learning rules (mcf stand-in)");
    println!("  -O0: {o0_rules} rules learned ({o0_fails} parameterization failures)");
    println!("  -O2: {o2_rules} rules learned ({o2_fails} parameterization failures)");
    println!("(paper: a rule learnable at -O2 fails at -O0 because the less-optimized");
    println!(" code's guest/host operand shapes diverge — reproduced: O0 < O2 rules)");
}
