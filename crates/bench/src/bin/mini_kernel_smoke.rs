//! `mini_kernel_smoke`: guest trap-path gate.
//!
//! Drives `ldbt_core::kernel` — the cooperative two-process mini-kernel
//! built on the engine's trap exit — over every engine and asserts the
//! full [`KernelRun`] (final registers, mailboxes, event order checksum)
//! matches the ARM interpreter reference. `scripts/tier1.sh` runs this
//! across the watchdog × superblock env matrix; the builder knobs are
//! inherited from the environment by `Engine::new`, so one binary covers
//! every cell.

use ldbt_core::kernel::{run_mini_kernel_dbt, run_mini_kernel_interp};
use ldbt_dbt::engine::Translator;
use ldbt_learn::RuleSet;
use std::sync::Arc;

fn main() {
    let want = run_mini_kernel_interp();
    for (name, translator) in [
        ("tcg", Translator::Tcg),
        ("jit", Translator::Jit),
        ("rules", Translator::Rules(Arc::new(RuleSet::new()))),
    ] {
        let got = run_mini_kernel_dbt(translator, |e| e);
        assert_eq!(got, want, "{name}: kernel run diverged from the interpreter");
    }
    println!(
        "mini_kernel_smoke ok yields={} faults={} checksum={:#010x}",
        want.yields,
        want.faults.len(),
        want.checksum
    );
}
