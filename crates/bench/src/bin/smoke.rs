//! Observability smoke: one small learn plus two engine runs with
//! fully deterministic stdout.
//!
//! `scripts/tier1.sh` runs this twice — tracing off and
//! `LDBT_TRACE=all:<path>` + `LDBT_STATS_JSON=<path>` — and byte-compares
//! the stdout of the two runs: observability must never perturb results.
//! Everything printed is a pure function of the modeled execution
//! (counters and modeled cycles; no wall-clock time), so the comparison
//! is exact. The emitted trace and run report are then validated with
//! the `obs_selfcheck` binary.

use ldbt_compiler::Options;
use ldbt_core::workloads::{benchmark, source, Workload};
use ldbt_core::{report, run_benchmark, EngineKind};

fn main() {
    let b = benchmark("mcf").expect("suite has mcf");
    let src = source(b, Workload::Ref);
    let learned = ldbt_core::learn::pipeline::learn_from_source("mcf", &src, &Options::o2())
        .expect("mcf compiles");
    let s = &learned.stats;
    println!(
        "learn mcf: pairs={} rules={} cache_hits={} cache_misses={}",
        s.total, s.rules, s.cache_hits, s.cache_misses
    );

    let tcg = run_benchmark("mcf", Workload::Test, EngineKind::Tcg, &Options::o2(), None);
    let rules = run_benchmark(
        "mcf",
        Workload::Test,
        EngineKind::Rules,
        &Options::o2(),
        Some(&learned.rules),
    );
    for run in [&tcg, &rules] {
        println!(
            "{} mcf: guest_dyn={} host_instrs={} blocks={} total_cycles={} coverage={:.4} rules_hit={} checksum={:#010x}",
            run.engine.name(),
            run.stats.guest_dyn(),
            run.stats.exec.host_instrs,
            run.stats.blocks(),
            run.stats.total_cycles(),
            run.stats.dynamic_coverage(),
            run.profile.rules.len(),
            run.checksum,
        );
    }

    // The run report (when configured) goes to its own file and the
    // confirmation to stderr, keeping stdout byte-comparable across
    // traced and untraced runs.
    if let Some(p) = report::write_if_configured(&[tcg, rules], &[learned.stats]) {
        eprintln!("run report: {}", p.display());
    }
}
