//! Figure 10: dynamic host instructions removed by the rules.

use ldbt_bench::{hr, learn_everything};
use ldbt_core::experiment::{dynamic_reduction, speedups};

fn main() {
    let all = learn_everything();
    let rows = speedups(&all, &ldbt_compiler::Options::o2());
    let red = dynamic_reduction(&rows);
    println!("Figure 10. Dynamic host instructions reduced vs the TCG baseline (ref)");
    hr(40);
    let mut sum = 0.0;
    for (name, r) in &red {
        println!("{:<12} {:>6.1}%", name, r * 100.0);
        sum += r;
    }
    hr(40);
    println!("{:<12} {:>6.1}%   (paper: 34% average)", "average", sum / red.len() as f64 * 100.0);
}
