#![forbid(unsafe_code)]
//! Experiment harness for the paper's tables and figures.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! evaluation (run with `cargo run --release -p ldbt-bench --bin <name>`):
//!
//! | binary   | reproduces |
//! |----------|------------|
//! | `table1` | Table 1 — learning statistics per benchmark            |
//! | `fig6`   | Figure 6 — rules learned vs optimization level         |
//! | `fig7`   | Figure 7 — learning sensitivity demonstration          |
//! | `fig8`   | Figure 8 — speedups, LLVM-style guest binaries         |
//! | `fig9`   | Figure 9 — speedups, GCC-style guest binaries          |
//! | `fig10`  | Figure 10 — dynamic host instructions removed          |
//! | `fig11`  | Figure 11 — static/dynamic rule coverage               |
//! | `fig12`  | Figure 12 — length distribution of hit rules           |
//! | `ablations` | design-choice ablations called out in DESIGN.md     |
//!
//! The `benches/` directory holds Criterion micro-benchmarks for the
//! pipeline stages (rule learning, rule lookup, block translation,
//! engine throughput, SMT equivalence checking).

use ldbt_core::experiment::ProgramRules;
use ldbt_core::learn::LearnStats;

/// Pretty-print a horizontal rule.
pub fn hr(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Render one Table 1 body row. Factored out of the `table1` binary so
/// the column layout can be golden-tested: the format string below is
/// the byte-exact layout the table has printed since the seed, and the
/// test pins it.
pub fn table1_row(
    name: &str,
    lang: &str,
    lines: usize,
    s: &LearnStats,
    wd: (u64, u64, u64),
) -> String {
    let vfy_share = if s.learn_time.as_secs_f64() > 0.0 {
        s.verify_time.as_secs_f64() / s.learn_time.as_secs_f64() * 100.0
    } else {
        0.0
    };
    format!(
        "{:<11} {:>3} {:>5} | {:>5} {:>4} {:>4} | {:>5} {:>5} {:>6} | {:>4} {:>4} {:>4} {:>5} | {:>6} {:>9.2} {:>9.3} {:>5.1} {:>5.1} | {:>6} {:>4} {:>4}",
        name,
        lang,
        lines,
        s.prep_ci, s.prep_pi, s.prep_mb,
        s.par_num, s.par_name, s.par_failg,
        s.ver_rg, s.ver_mm, s.ver_br, s.ver_other,
        s.rules,
        s.learn_time.as_secs_f64() * 1e3,
        if s.rules > 0 { s.learn_time.as_secs_f64() * 1e3 / s.rules as f64 } else { 0.0 },
        vfy_share,
        s.cache_hit_rate() * 100.0,
        wd.0,
        wd.1,
        wd.2,
    )
}

/// Format a slice of (label, value) pairs as an aligned table body.
pub fn print_rows(rows: &[(String, String)]) {
    let w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    for (l, v) in rows {
        println!("{l:<w$}  {v}");
    }
}

/// Shared preamble: learn from all suite programs, printing progress.
pub fn learn_everything() -> Vec<ProgramRules> {
    eprintln!("learning rules from the 12 suite programs (leave-one-out sets are assembled per target)...");
    ldbt_core::experiment::learn_all(&ldbt_compiler::Options::o2()).expect("suite compiles")
}

/// Whether `LDBT_DETERMINISTIC=1` is set: experiment binaries then zero
/// their wall-clock columns so two invocations are byte-identical
/// (`scripts/tier1.sh` uses this to prove tracing cannot perturb
/// results). Anything but exactly `1` leaves timing untouched.
pub fn deterministic_output() -> bool {
    std::env::var("LDBT_DETERMINISTIC").as_deref() == Ok("1")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn table1_row_layout_is_pinned() {
        let s = LearnStats {
            name: "demo".into(),
            total: 100,
            prep_ci: 10,
            prep_pi: 2,
            prep_mb: 3,
            par_num: 4,
            par_name: 5,
            par_failg: 6,
            ver_rg: 7,
            ver_mm: 8,
            ver_br: 9,
            ver_other: 1,
            rules: 45,
            cache_hits: 30,
            cache_misses: 40,
            learn_time: Duration::from_millis(90),
            verify_time: Duration::from_millis(45),
        };
        assert_eq!(
            table1_row("mcf", "C", 123, &s, (17, 1, 1)),
            "mcf           C   123 |    10    2    3 |     4     5      6 |    7    8    9     1 |     45     90.00     2.000  50.0  42.9 |     17    1    1"
        );
        // Zeroed wall-clock (the LDBT_DETERMINISTIC=1 rendering) divides
        // nothing by zero.
        let z = LearnStats { learn_time: Duration::ZERO, verify_time: Duration::ZERO, ..s };
        assert_eq!(
            table1_row("mcf", "C", 123, &z, (0, 0, 0)),
            "mcf           C   123 |    10    2    3 |     4     5      6 |    7    8    9     1 |     45      0.00     0.000   0.0  42.9 |      0    0    0"
        );
    }
}
