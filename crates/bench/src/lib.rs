#![forbid(unsafe_code)]
//! Experiment harness for the paper's tables and figures.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! evaluation (run with `cargo run --release -p ldbt-bench --bin <name>`):
//!
//! | binary   | reproduces |
//! |----------|------------|
//! | `table1` | Table 1 — learning statistics per benchmark            |
//! | `fig6`   | Figure 6 — rules learned vs optimization level         |
//! | `fig7`   | Figure 7 — learning sensitivity demonstration          |
//! | `fig8`   | Figure 8 — speedups, LLVM-style guest binaries         |
//! | `fig9`   | Figure 9 — speedups, GCC-style guest binaries          |
//! | `fig10`  | Figure 10 — dynamic host instructions removed          |
//! | `fig11`  | Figure 11 — static/dynamic rule coverage               |
//! | `fig12`  | Figure 12 — length distribution of hit rules           |
//! | `ablations` | design-choice ablations called out in DESIGN.md     |
//!
//! The `benches/` directory holds Criterion micro-benchmarks for the
//! pipeline stages (rule learning, rule lookup, block translation,
//! engine throughput, SMT equivalence checking).

use ldbt_core::experiment::ProgramRules;

/// Pretty-print a horizontal rule.
pub fn hr(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Format a slice of (label, value) pairs as an aligned table body.
pub fn print_rows(rows: &[(String, String)]) {
    let w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    for (l, v) in rows {
        println!("{l:<w$}  {v}");
    }
}

/// Shared preamble: learn from all suite programs, printing progress.
pub fn learn_everything() -> Vec<ProgramRules> {
    eprintln!("learning rules from the 12 suite programs (leave-one-out sets are assembled per target)...");
    ldbt_core::experiment::learn_all(&ldbt_compiler::Options::o2()).expect("suite compiles")
}
