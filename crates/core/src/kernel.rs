//! A host-side cooperative mini-kernel over the guest trap path.
//!
//! The DBT's trap exit ([`RunOutcome::Trap`]) turns guest faults and
//! supervisor calls into values a host driver can act on. This module is
//! the smallest interesting such driver: a round-robin scheduler over
//! the two cooperating "processes" (plus one that faults) of
//! [`ldbt_workloads::asm::mini_kernel_image`]. `svc #1` yields, `svc #2`
//! exits, and an out-of-range access kills the process — the same
//! contract a real user-mode emulator's syscall layer is built on.
//!
//! The scheduler is written once against a tiny [`Cpu`] abstraction and
//! driven twice: over the DBT [`Engine`] and over the reference
//! [`ArmMachine`]. Both must produce the same [`KernelRun`] — final
//! per-process registers, mailbox contents, and event order — which is
//! exactly the differential guarantee the watchdog relies on: a trap
//! observed by translated code must be the trap the interpreter takes.
//!
//! The workload keeps no condition flags live across a yield (every
//! `svc #1` is followed by a flag-setting `subs`), so a process context
//! is `r0`–`r14` plus the resume pc.

use ldbt_arm::{ArmMachine, ArmReg, ArmStop, ArmTrapCause};
use ldbt_dbt::env::GUEST_MEM_LIMIT;
use ldbt_dbt::{Engine, RunOutcome, Translator, TrapKind};
use ldbt_isa::Width;
use ldbt_workloads::asm::{mini_kernel_image, MAILBOX_BASE};

/// Host-instruction (or interpreter-step) budget per scheduling slice.
const SLICE_FUEL: u64 = 50_000_000;

/// How a process left its slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Exit {
    /// `svc #1`: save the context, resume later at `pc`.
    Yield { pc: u32 },
    /// `svc #2`: clean exit.
    Done,
    /// Out-of-range access at `addr`: the kernel kills the process.
    Fault { addr: u32 },
}

/// One execution substrate the scheduler can drive.
trait Cpu {
    /// Install a process context (`r0`–`r14` + pc) and run until the
    /// next trap.
    fn resume(&mut self, ctx: &mut [u32; 16]) -> Exit;
    /// Read guest memory (for the final mailbox audit).
    fn mem(&self, addr: u32) -> u32;
}

struct DbtCpu(Engine);

impl Cpu for DbtCpu {
    fn resume(&mut self, ctx: &mut [u32; 16]) -> Exit {
        for r in ArmReg::ALL {
            if r != ArmReg::Pc {
                self.0.set_guest_reg(r, ctx[r.index()]);
            }
        }
        self.0.set_guest_pc(ctx[15]);
        let exit = match self.0.run(SLICE_FUEL) {
            RunOutcome::Trap { pc, cause: TrapKind::Svc(1) } => Exit::Yield { pc: pc + 4 },
            RunOutcome::Trap { cause: TrapKind::Svc(2), .. } => Exit::Done,
            RunOutcome::Trap { cause: TrapKind::Mem(addr), .. } => Exit::Fault { addr },
            out => panic!("mini-kernel process left the DBT with {out:?}"),
        };
        for r in ArmReg::ALL {
            if r != ArmReg::Pc {
                ctx[r.index()] = self.0.guest_reg(r);
            }
        }
        exit
    }

    fn mem(&self, addr: u32) -> u32 {
        self.0.guest_mem(addr)
    }
}

struct InterpCpu(ArmMachine);

impl Cpu for InterpCpu {
    fn resume(&mut self, ctx: &mut [u32; 16]) -> Exit {
        self.0.state.regs = *ctx;
        let exit = match self.0.run(SLICE_FUEL) {
            ArmStop::Trap { pc, cause: ArmTrapCause::Svc(1) } => Exit::Yield { pc: pc + 4 },
            ArmStop::Trap { cause: ArmTrapCause::Svc(2), .. } => Exit::Done,
            ArmStop::Trap { cause: ArmTrapCause::Mem(addr), .. } => Exit::Fault { addr },
            stop => panic!("mini-kernel process left the interpreter with {stop}"),
        };
        ctx[..15].copy_from_slice(&self.0.state.regs[..15]);
        exit
    }

    fn mem(&self, addr: u32) -> u32 {
        self.0.state.mem.read(addr, Width::W32)
    }
}

/// The guest-visible outcome of a full mini-kernel schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelRun {
    /// Final `r0` of each process, in image order (a, b, wild).
    pub results: [u32; 3],
    /// Final mailbox words (a, b).
    pub mailboxes: [u32; 2],
    /// Total `svc #1` yields served.
    pub yields: u32,
    /// Kill events: (process index, faulting address).
    pub faults: Vec<(usize, u32)>,
    /// Rolling mix of every scheduler event, order-sensitive — two runs
    /// agree on this iff they saw the same traps in the same order with
    /// the same register state.
    pub checksum: u32,
}

fn schedule(cpu: &mut impl Cpu, entries: &[u32]) -> KernelRun {
    let mut ctxs: Vec<[u32; 16]> = entries
        .iter()
        .map(|&pc| {
            let mut c = [0u32; 16];
            c[15] = pc;
            c
        })
        .collect();
    let mut alive = vec![true; ctxs.len()];
    let mut run = KernelRun {
        results: [0; 3],
        mailboxes: [0; 2],
        yields: 0,
        faults: Vec::new(),
        checksum: 0,
    };
    fn mix(run: &mut KernelRun, v: u32) {
        run.checksum = run.checksum.wrapping_mul(1_664_525).wrapping_add(v);
    }
    while alive.iter().any(|&a| a) {
        for p in 0..ctxs.len() {
            if !alive[p] {
                continue;
            }
            match cpu.resume(&mut ctxs[p]) {
                Exit::Yield { pc } => {
                    ctxs[p][15] = pc;
                    run.yields += 1;
                    mix(&mut run, 1);
                }
                Exit::Done => {
                    alive[p] = false;
                    mix(&mut run, 2);
                }
                Exit::Fault { addr } => {
                    alive[p] = false;
                    run.faults.push((p, addr));
                    mix(&mut run, 3 ^ addr);
                }
            }
            mix(&mut run, ctxs[p][0]);
        }
    }
    for (p, ctx) in ctxs.iter().enumerate() {
        run.results[p] = ctx[0];
    }
    run.mailboxes = [cpu.mem(MAILBOX_BASE), cpu.mem(MAILBOX_BASE + 4)];
    let [ma, mb] = run.mailboxes;
    mix(&mut run, ma);
    mix(&mut run, mb);
    run
}

fn entries() -> Vec<u32> {
    let img = mini_kernel_image();
    ["proc_a", "proc_b", "proc_wild"]
        .iter()
        .map(|name| {
            img.func_addrs
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("mini-kernel image lacks {name}"))
                .1
        })
        .collect()
}

/// Run the mini-kernel schedule over a DBT engine. The `configure`
/// closure applies builder knobs (watchdog, superblocks, chaining, …).
pub fn run_mini_kernel_dbt(
    translator: Translator,
    configure: impl FnOnce(Engine) -> Engine,
) -> KernelRun {
    let img = mini_kernel_image();
    let e = configure(Engine::new(&img, translator));
    schedule(&mut DbtCpu(e), &entries())
}

/// Run the identical schedule over the reference ARM interpreter, with
/// the same guest memory limit the engine enforces.
pub fn run_mini_kernel_interp() -> KernelRun {
    let img = mini_kernel_image();
    let mut m = ArmMachine::new();
    m.state.trap_limit = Some(GUEST_MEM_LIMIT);
    img.load_into(&mut m.state.mem);
    schedule(&mut InterpCpu(m), &entries())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn interp_kernel_is_deterministic_and_plausible() {
        let a = run_mini_kernel_interp();
        let b = run_mini_kernel_interp();
        assert_eq!(a, b);
        // 12 A-yields + 9 B-yields; the wild process dies on its store.
        assert_eq!(a.yields, 21);
        assert_eq!(a.faults, vec![(2, 0xffff_fff8)]);
        assert!(a.results[0] > 0 && a.results[1] > 0);
        assert_eq!(a.results[2], 0, "proc_wild never computes anything");
    }

    #[test]
    fn dbt_kernel_matches_interpreter_across_engines() {
        let want = run_mini_kernel_interp();
        for translator in [
            Translator::Tcg,
            Translator::Jit,
            Translator::Rules(Arc::new(ldbt_learn::RuleSet::new())),
        ] {
            let got = run_mini_kernel_dbt(translator.clone(), |e| e);
            assert_eq!(got, want, "{translator:?}");
        }
    }

    #[test]
    fn dbt_kernel_matches_under_watchdog_and_without_superblocks() {
        let want = run_mini_kernel_interp();
        for wd in [None, Some(1)] {
            for sb in [None, Some(4)] {
                let got = run_mini_kernel_dbt(Translator::Tcg, |e| {
                    e.with_watchdog(wd).with_superblocks(sb)
                });
                assert_eq!(got, want, "wd={wd:?} sb={sb:?}");
            }
        }
    }
}
