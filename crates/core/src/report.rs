//! Machine-readable run reports (`LDBT_STATS_JSON`).
//!
//! A run report is one JSON document (schema
//! [`ldbt_obs::selfcheck::REPORT_SCHEMA`]) capturing everything a run
//! measured: per-benchmark counter registries, per-rule execution
//! attribution, hot blocks, per-program learning statistics, and the
//! process-wide learn-worker metrics. `scripts/tier1.sh` validates the
//! emitted shape with the `obs_selfcheck` binary.
//!
//! Every field is deterministic: counters are pure functions of the
//! modeled execution, rule profiles sort by their stable key (rendered
//! as fixed-width hex so string order is numeric order), and wall-clock
//! durations are deliberately excluded.

use crate::BenchRun;
use ldbt_learn::LearnStats;
use ldbt_obs::json::Json;
use ldbt_obs::selfcheck::REPORT_SCHEMA;
use std::path::PathBuf;

/// Names of [`LearnStats::counters`] entries, in that array's order.
pub const LEARN_COUNTER_NAMES: [&str; 14] = [
    "total",
    "prep_ci",
    "prep_pi",
    "prep_mb",
    "par_num",
    "par_name",
    "par_failg",
    "ver_rg",
    "ver_mm",
    "ver_br",
    "ver_other",
    "rules",
    "cache_hits",
    "cache_misses",
];

fn counters_obj(pairs: &[(&str, u64)]) -> Json {
    Json::obj(pairs.iter().map(|(n, v)| (*n, Json::u64(*v))).collect())
}

/// One benchmark's report entry: the full counter registry plus the
/// execution-hotness profile.
pub fn bench_report(run: &BenchRun) -> Json {
    let rules: Vec<Json> = run
        .profile
        .rules
        .iter()
        .map(|r| {
            Json::obj(vec![
                // Fixed-width hex: string order is numeric order, which
                // the schema self-check relies on.
                ("key", Json::Str(format!("{:#018x}", r.key))),
                ("len", Json::u64(r.len as u64)),
                ("blocks", Json::u64(r.blocks)),
                ("execs", Json::u64(r.execs)),
            ])
        })
        .collect();
    let hot: Vec<Json> = run
        .profile
        .hot_blocks
        .iter()
        .map(|b| {
            Json::obj(vec![
                ("pc", Json::Str(format!("{:#010x}", b.pc))),
                ("execs", Json::u64(b.execs)),
                ("guest_len", Json::u64(b.guest_len)),
                ("covered", Json::u64(b.covered)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("name", Json::Str(run.name.clone())),
        ("engine", Json::Str(run.engine.name().to_string())),
        ("counters", counters_obj(&run.stats.registry())),
        ("rules", Json::Arr(rules)),
        ("hot_blocks", Json::Arr(hot)),
        // Log2 block-hotness histogram: entry i counts live blocks whose
        // exec count has bit length i.
        ("hotness", Json::Arr(run.profile.hotness.iter().map(|&c| Json::u64(c)).collect())),
    ])
}

/// One program's learning statistics (the deterministic counters only).
pub fn learn_report(s: &LearnStats) -> Json {
    let pairs: Vec<(&str, u64)> =
        LEARN_COUNTER_NAMES.iter().copied().zip(s.counters().map(|v| v as u64)).collect();
    Json::obj(vec![("name", Json::Str(s.name.clone())), ("counters", counters_obj(&pairs))])
}

/// Assemble the full run report from whatever this process measured.
/// The `learn_workers` section snapshots the process-wide
/// [`ldbt_learn::worker_metrics`] registry (cumulative across every
/// pipeline run in the process).
pub fn run_report(benches: &[BenchRun], learn: &[LearnStats]) -> Json {
    let mut fields = vec![
        ("schema", Json::Str(REPORT_SCHEMA.to_string())),
        ("benches", Json::Arr(benches.iter().map(bench_report).collect())),
    ];
    if !learn.is_empty() {
        fields.push(("learn", Json::Arr(learn.iter().map(learn_report).collect())));
    }
    fields.push(("learn_workers", counters_obj(&ldbt_learn::worker_metrics().snapshot())));
    Json::obj(fields)
}

/// The run-report destination from `LDBT_STATS_JSON` (empty/whitespace
/// values mean "no report", like an unset variable).
pub fn stats_json_path() -> Option<PathBuf> {
    std::env::var("LDBT_STATS_JSON").ok().filter(|p| !p.trim().is_empty()).map(PathBuf::from)
}

/// Write the run report to the `LDBT_STATS_JSON` path if one is
/// configured. Returns the path written, `None` when unconfigured. A
/// write failure is reported on stderr but never fails the run — the
/// report is diagnostics, not results.
pub fn write_if_configured(benches: &[BenchRun], learn: &[LearnStats]) -> Option<PathBuf> {
    let path = stats_json_path()?;
    let mut text = run_report(benches, learn).render();
    text.push('\n');
    match std::fs::write(&path, text) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("LDBT_STATS_JSON: cannot write {}: {e}", path.display());
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_benchmark, EngineKind};
    use ldbt_compiler::Options;
    use ldbt_obs::selfcheck::check_run_report;
    use ldbt_workloads::Workload;

    #[test]
    fn report_passes_its_own_selfcheck() {
        let run = run_benchmark("mcf", Workload::Test, EngineKind::Tcg, &Options::o2(), None);
        let learn = LearnStats { name: "demo".into(), total: 3, rules: 1, ..Default::default() };
        let report = run_report(&[run], &[learn]);
        let text = report.render();
        check_run_report(&text).unwrap();
        // The learn section round-trips its counters by name.
        let v = ldbt_obs::json::parse(&text).unwrap();
        let learn = v.get("learn").and_then(Json::as_arr).unwrap();
        let ctrs = learn[0].get("counters").unwrap();
        assert_eq!(ctrs.get("total").and_then(Json::as_num), Some(3.0));
        assert_eq!(ctrs.get("rules").and_then(Json::as_num), Some(1.0));
    }

    #[test]
    fn rules_profile_is_sorted_and_checksummed() {
        let (rules, _) = crate::learn_suite(&Options::o2(), Some("mcf")).unwrap();
        let run =
            run_benchmark("mcf", Workload::Test, EngineKind::Rules, &Options::o2(), Some(&rules));
        assert!(!run.profile.rules.is_empty(), "rules engine attributes rule hits");
        let text = run_report(&[run], &[]).render();
        check_run_report(&text).unwrap();
    }
}
