//! Multi-tenant translation serving: N independent guest engines over
//! one shared, atomically-published rule generation.
//!
//! The deployment story this models (paper §7 "amortizing learning
//! cost"): translation rules are learned once, then serve many
//! concurrent guest programs. Each *tenant* owns a full [`Engine`] —
//! private guest memory, block arena, IBTC, chain graph, superblock
//! state — so tenants are isolated by construction; the only shared
//! mutable state is the [`RuleCell`], an atomic generation-swap handle
//! over an immutable `Arc<RuleSet>`. Readers never lock: each tenant
//! polls the cell's generation counter (one `Acquire` load) at
//! dispatcher entries and re-caches the `Arc` only when another
//! tenant's watchdog published a new generation (quarantine or repair).
//!
//! The [`Engine`] itself is deliberately `!Send` (its dispatch hot path
//! uses non-atomic `Rc` refcounts — see `ldbt-dbt::share`), so the
//! thread pool here never moves an engine between threads: each tenant
//! thread *constructs* its engines in place from the shared
//! [`ArmImage`]s (plain `Send + Sync` data) and the shared cell.
//!
//! Counters follow the two-tier scheme from `ldbt-obs`: every engine
//! accumulates into its own `Cell`-backed block on its own thread, and
//! the block is folded into a [`SharedCounters`] registry exactly once
//! per run, after the run — concurrent tenants never contend on
//! counter cache lines and never interleave partial counts.

use crate::RUN_FUEL;
use ldbt_compiler::link::build_arm_image;
use ldbt_compiler::{ArmImage, CompileError, Options};
use ldbt_dbt::engine::{RunOutcome, Translator};
use ldbt_dbt::stats::DBT_COUNTER_NAMES;
use ldbt_dbt::{Engine, RuleCell};
use ldbt_obs::registry::SharedCounters;
use ldbt_workloads::{benchmark, source, Workload};
use std::sync::Arc;

/// A program prepared for serving: linked image plus the interpreter
/// reference checksum every tenant's result is validated against.
#[derive(Debug, Clone)]
pub struct ServeProgram {
    /// Benchmark name.
    pub name: String,
    /// The linked guest image (shared read-only across tenants).
    pub image: ArmImage,
    /// Reference checksum (r0 at halt) from the ARM interpreter.
    pub want: u32,
}

/// Build and reference-run each named benchmark once, up front. The
/// images and checksums are immutable afterwards, so all tenants share
/// them by reference — per-tenant work is purely translation+execution.
///
/// # Errors
///
/// Returns a [`CompileError`] if a program fails to build.
///
/// # Panics
///
/// Panics if the interpreter does not halt on a program — that is a
/// workload bug, not a serving outcome.
pub fn prepare(
    names: &[&str],
    workload: Workload,
    options: &Options,
) -> Result<Vec<ServeProgram>, CompileError> {
    names
        .iter()
        .map(|name| {
            let b = benchmark(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
            let src = source(b, workload);
            let image = build_arm_image(&src, options)?;
            let mut m = ldbt_arm::ArmMachine::new();
            image.load_into(&mut m.state.mem);
            m.state.regs[15] = image.entry;
            let stop = m.run(600_000_000);
            assert_eq!(stop, ldbt_arm::ArmStop::Halt, "{name}: interpreter did not halt");
            let want = m.state.reg(ldbt_arm::ArmReg::R0);
            Ok(ServeProgram { name: (*name).to_string(), image, want })
        })
        .collect()
}

/// One tenant's results: everything needed to compare a concurrent run
/// against a solo run of the same program mix.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Tenant index (0-based).
    pub tenant: usize,
    /// Dynamic guest instructions emulated across all programs.
    pub guest_instrs: u64,
    /// Per-program `(name, checksum)` in serving order. Each checksum
    /// was already validated against the interpreter reference.
    pub checksums: Vec<(String, u32)>,
    /// Declaration-ordered engine counter totals, summed over the
    /// tenant's program runs.
    pub counters: Vec<(&'static str, u64)>,
    /// The rule generation the tenant's last engine ended on.
    pub final_generation: u64,
}

/// The result of one serving run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Per-tenant reports, in tenant order.
    pub tenants: Vec<TenantReport>,
    /// Cross-tenant counter totals (folded via
    /// [`SharedCounters::absorb`], declaration order).
    pub aggregate: Vec<(&'static str, u64)>,
    /// The cell's generation after all tenants joined (0 = nothing was
    /// ever quarantined or repaired).
    pub generation: u64,
}

impl ServeReport {
    /// Total dynamic guest instructions across all tenants — the
    /// numerator of the throughput metric.
    pub fn total_guest_instrs(&self) -> u64 {
        self.tenants.iter().map(|t| t.guest_instrs).sum()
    }
}

/// Serve `programs` to `tenants` concurrent tenants, all sharing the
/// rule generation in `cell`. Engine knobs default from the
/// environment, exactly as for a solo [`crate::run_benchmark`].
///
/// # Panics
///
/// Panics if any tenant's engine fails to halt or produces a checksum
/// differing from the interpreter reference (propagated from the tenant
/// thread at scope join) — correctness is an invariant of serving, not
/// a per-request outcome.
pub fn serve(programs: &[ServeProgram], tenants: usize, cell: &Arc<RuleCell>) -> ServeReport {
    serve_with(programs, tenants, cell, |e| e)
}

/// [`serve`] with an engine configurator applied to every engine at
/// construction (watchdog period, superblock threshold, fault plan —
/// anything the `with_*` builders expose). The configurator runs on the
/// tenant threads, so it must be `Sync`; the engines it configures
/// never leave their thread.
pub fn serve_with<F>(
    programs: &[ServeProgram],
    tenants: usize,
    cell: &Arc<RuleCell>,
    configure: F,
) -> ServeReport
where
    F: Fn(Engine) -> Engine + Sync,
{
    assert!(tenants > 0, "serving requires at least one tenant");
    let shared = SharedCounters::new(DBT_COUNTER_NAMES);
    let mut reports: Vec<TenantReport> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..tenants)
            .map(|tenant| {
                let shared = &shared;
                let configure = &configure;
                s.spawn(move || run_tenant(tenant, programs, cell, shared, configure))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("tenant thread panicked")).collect()
    });
    reports.sort_by_key(|t| t.tenant);
    ServeReport { tenants: reports, aggregate: shared.snapshot(), generation: cell.generation() }
}

/// One tenant's serving loop: construct a fresh engine per program (on
/// this thread — engines are `!Send`), run it, validate the checksum,
/// and fold its counters into the tenant totals. The tenant block is
/// absorbed into the shared registry once, at the end.
fn run_tenant(
    tenant: usize,
    programs: &[ServeProgram],
    cell: &Arc<RuleCell>,
    shared: &SharedCounters,
    configure: &(impl Fn(Engine) -> Engine + Sync),
) -> TenantReport {
    let totals = ldbt_obs::registry::CounterBlock::new(DBT_COUNTER_NAMES);
    let mut checksums = Vec::with_capacity(programs.len());
    let mut final_generation = cell.generation();
    for p in programs {
        let translator = Translator::Rules(cell.load().0);
        let mut e = configure(Engine::new(&p.image, translator).with_rule_cell(Arc::clone(cell)));
        let out = e.run(RUN_FUEL);
        assert_eq!(out, RunOutcome::Halted, "{}: tenant {tenant} did not halt", p.name);
        let got = e.guest_reg(ldbt_arm::ArmReg::R0);
        assert_eq!(got, p.want, "{}: tenant {tenant} produced a wrong checksum", p.name);
        for (i, (_, v)) in e.stats.counters().snapshot().into_iter().enumerate() {
            totals.add(i, v);
        }
        final_generation = e.rules_generation();
        checksums.push((p.name.clone(), got));
    }
    shared.absorb(&totals);
    TenantReport {
        tenant,
        guest_instrs: totals.get(0), // DbtCtr::GuestDyn
        checksums,
        counters: totals.snapshot(),
        final_generation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldbt_learn::pipeline::learn_from_source;
    use ldbt_learn::RuleSet;

    fn small_rules() -> RuleSet {
        let mut rules = RuleSet::new();
        for name in ["mcf", "libquantum"] {
            let b = benchmark(name).unwrap();
            let src = source(b, Workload::Ref);
            let r = learn_from_source(name, &src, &Options::o2()).unwrap();
            rules.merge(&r.rules);
        }
        rules
    }

    #[test]
    fn two_tenants_serve_correctly_and_aggregate() {
        let programs = prepare(&["mcf", "libquantum"], Workload::Test, &Options::o2()).unwrap();
        let cell = Arc::new(RuleCell::new(small_rules()));
        let report = serve_with(&programs, 2, &cell, |e| e.with_watchdog(None).with_fault(None));
        assert_eq!(report.tenants.len(), 2);
        // Every tenant ran every program; checksums were validated
        // against the interpreter inside the tenant threads.
        for t in &report.tenants {
            assert_eq!(t.checksums.len(), 2);
            assert!(t.guest_instrs > 0);
        }
        // Tenants are deterministic clones of each other: identical
        // checksums *and* identical counter totals.
        assert_eq!(report.tenants[0].checksums, report.tenants[1].checksums);
        assert_eq!(report.tenants[0].counters, report.tenants[1].counters);
        // The shared registry is the exact sum of the tenant blocks.
        let guest_dyn = report.aggregate.iter().find(|(n, _)| *n == "guest_dyn").unwrap().1;
        assert_eq!(guest_dyn, report.total_guest_instrs());
        // Nothing was quarantined, so no generation was ever published.
        assert_eq!(report.generation, 0);
    }

    #[test]
    #[should_panic(expected = "at least one tenant")]
    fn zero_tenants_rejected() {
        let cell = Arc::new(RuleCell::new(RuleSet::new()));
        serve(&[], 0, &cell);
    }
}
