#![forbid(unsafe_code)]
//! End-to-end pipeline: learn translation rules from a program corpus and
//! run benchmarks under the rule-enhanced DBT.
//!
//! This facade crate wires the whole system together the way the paper's
//! evaluation does:
//!
//! 1. [`learn_suite`] compiles every (synthetic) SPEC CINT2006 program
//!    for both ISAs and learns verified translation rules, optionally
//!    *excluding* the program under evaluation (the paper's leave-one-out
//!    protocol);
//! 2. [`run_benchmark`] executes a benchmark under a chosen engine
//!    (QEMU-style TCG baseline, rule-enhanced, or the HQEMU-style
//!    optimizing JIT), validating the final architectural state against
//!    the ARM interpreter and returning the statistics each figure is
//!    computed from;
//! 3. [`experiment`] contains one driver per table/figure of the paper.
//!
//! ```no_run
//! use ldbt_core::{learn_suite, run_benchmark, EngineKind};
//! use ldbt_compiler::Options;
//! use ldbt_workloads::Workload;
//!
//! let (rules, _) = learn_suite(&Options::o2(), Some("mcf")).unwrap();
//! let baseline = run_benchmark("mcf", Workload::Ref, EngineKind::Tcg, &Options::o2(), None);
//! let ours = run_benchmark("mcf", Workload::Ref, EngineKind::Rules, &Options::o2(), Some(&rules));
//! println!("speedup: {:.2}x", ours.speedup_over(&baseline));
//! ```

pub mod experiment;
pub mod kernel;
pub mod report;
pub mod serve;

pub use ldbt_compiler as compiler;
pub use ldbt_dbt as dbt;
pub use ldbt_learn as learn;
pub use ldbt_learn::{configured_threads, LearnConfig, VerifyCache};
pub use ldbt_workloads as workloads;

use ldbt_compiler::{link::build_arm_image, CompileError, Options};
use ldbt_dbt::engine::{RunOutcome, Translator};
use ldbt_dbt::{DbtStats, Engine, ExecProfile};
use ldbt_learn::{LearnStats, RuleSet};
use ldbt_workloads::{benchmark, source, Workload, SUITE};
use std::sync::Arc;

/// Which execution engine to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// QEMU-style TCG baseline.
    Tcg,
    /// Rule-enhanced translation (requires a [`RuleSet`]).
    Rules,
    /// HQEMU-style optimizing JIT backend.
    Jit,
}

impl EngineKind {
    /// Stable lowercase tag used in run reports and trace events.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Tcg => "tcg",
            EngineKind::Rules => "rules",
            EngineKind::Jit => "jit",
        }
    }
}

/// The result of one benchmark run.
#[derive(Debug, Clone)]
pub struct BenchRun {
    /// Benchmark name.
    pub name: String,
    /// The engine used.
    pub engine: EngineKind,
    /// DBT statistics (cycles, coverage, rule hits).
    pub stats: DbtStats,
    /// Execution-hotness profile (per-rule attribution, hot blocks),
    /// snapshotted from the code cache at run end.
    pub profile: ExecProfile,
    /// The guest checksum (r0 at exit) — validated against the
    /// interpreter.
    pub checksum: u32,
}

impl BenchRun {
    /// Speedup of this run over a baseline (`baseline_time / own_time`).
    pub fn speedup_over(&self, baseline: &BenchRun) -> f64 {
        baseline.stats.total_cycles() as f64 / self.stats.total_cycles() as f64
    }
}

/// Learn rules from the whole suite, optionally excluding one program
/// (the paper's protocol: "the translation rules learned from all other
/// benchmark programs that do not include the evaluated benchmark").
///
/// Rules are always learned from `Ref`-workload sources compiled with
/// `options` (the workload only changes iteration counts, not code
/// shape).
///
/// # Errors
///
/// Returns a [`CompileError`] if generation/compilation fails.
pub fn learn_suite(
    options: &Options,
    exclude: Option<&str>,
) -> Result<(RuleSet, Vec<LearnStats>), CompileError> {
    let config = ldbt_learn::LearnConfig::default();
    let mut cache = ldbt_learn::VerifyCache::new();
    let mut rules = RuleSet::new();
    let mut stats = Vec::new();
    for b in &SUITE {
        if Some(b.name) == exclude {
            continue;
        }
        let src = source(b, Workload::Ref);
        let report = ldbt_learn::pipeline::learn_from_source_cached(
            b.name, &src, options, &config, &mut cache,
        )?;
        rules.merge(&report.rules);
        stats.push(report.stats);
    }
    Ok((rules, stats))
}

/// Host-instruction fuel for benchmark runs.
pub const RUN_FUEL: u64 = 3_000_000_000;

/// Run one benchmark under an engine, validating correctness against the
/// ARM interpreter.
///
/// # Panics
///
/// Panics if compilation fails, the engine does not halt, or the final
/// guest state disagrees with the interpreter — any of these is a bug in
/// the translation stack, never a measurement to report.
pub fn run_benchmark(
    name: &str,
    workload: Workload,
    engine: EngineKind,
    guest_options: &Options,
    rules: Option<&RuleSet>,
) -> BenchRun {
    let b = benchmark(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let src = source(b, workload);
    let image = build_arm_image(&src, guest_options)
        .unwrap_or_else(|e| panic!("{name} failed to build: {e}"));
    // Reference run.
    let mut m = ldbt_arm::ArmMachine::new();
    image.load_into(&mut m.state.mem);
    m.state.regs[15] = image.entry;
    let stop = m.run(600_000_000);
    assert_eq!(stop, ldbt_arm::ArmStop::Halt, "{name}: interpreter did not halt");
    let want = m.state.reg(ldbt_arm::ArmReg::R0);
    // DBT run.
    let translator = match engine {
        EngineKind::Tcg => Translator::Tcg,
        EngineKind::Jit => Translator::Jit,
        EngineKind::Rules => {
            Translator::Rules(Arc::new(rules.expect("Rules engine needs a rule set").clone()))
        }
    };
    let mut e = Engine::new(&image, translator);
    let out = e.run(RUN_FUEL);
    assert_eq!(out, RunOutcome::Halted, "{name}: DBT did not halt under {engine:?}");
    let got = e.guest_reg(ldbt_arm::ArmReg::R0);
    assert_eq!(got, want, "{name}: wrong result under {engine:?}");
    let profile = e.profile();
    BenchRun { name: name.to_string(), engine, stats: e.stats, profile, checksum: got }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leave_one_out_excludes() {
        // Use a tiny sub-experiment: learning from two small programs.
        let (all, stats_all) = {
            let mut rules = RuleSet::new();
            let mut stats = Vec::new();
            for name in ["mcf", "libquantum"] {
                let b = benchmark(name).unwrap();
                let src = source(b, Workload::Ref);
                let r =
                    ldbt_learn::pipeline::learn_from_source(name, &src, &Options::o2()).unwrap();
                rules.extend_from(&r.rules);
                stats.push(r.stats);
            }
            (rules, stats)
        };
        assert_eq!(stats_all.len(), 2);
        assert!(!all.is_empty(), "some rules learned");
    }

    #[test]
    fn tcg_baseline_runs_mcf_test() {
        let run = run_benchmark("mcf", Workload::Test, EngineKind::Tcg, &Options::o2(), None);
        assert!(run.stats.guest_dyn() > 0);
        assert!(run.stats.exec.host_instrs > run.stats.guest_dyn(), "expansion > 1x");
    }

    #[test]
    fn rules_engine_correct_and_faster_on_ref() {
        let (rules, _) = learn_suite(&Options::o2(), Some("mcf")).unwrap();
        let base = run_benchmark("mcf", Workload::Ref, EngineKind::Tcg, &Options::o2(), None);
        let ours =
            run_benchmark("mcf", Workload::Ref, EngineKind::Rules, &Options::o2(), Some(&rules));
        assert_eq!(base.checksum, ours.checksum);
        let speedup = ours.speedup_over(&base);
        assert!(
            speedup > 1.0,
            "rules must beat the baseline on ref (got {speedup:.3}x, coverage {:.2})",
            ours.stats.dynamic_coverage()
        );
        assert!(ours.stats.dynamic_coverage() > 0.2, "some dynamic coverage");
    }
}
