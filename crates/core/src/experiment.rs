//! One driver per table/figure of the paper's evaluation (§6).
//!
//! Each function returns plain data; the `ldbt-bench` binaries print the
//! rows and EXPERIMENTS.md records paper-vs-measured values.

use crate::{run_benchmark, BenchRun, EngineKind};
use ldbt_compiler::{CompileError, OptLevel, Options};
use ldbt_learn::pipeline::{learn_from_source, learn_from_source_cached};
use ldbt_learn::{LearnConfig, LearnStats, RuleSet, VerifyCache};
use ldbt_workloads::{source, Benchmark, Workload, SUITE};

/// Per-program learned rules (kept separate so leave-one-out sets can be
/// assembled without re-learning).
#[derive(Debug, Clone)]
pub struct ProgramRules {
    /// Program name.
    pub name: String,
    /// Rules learned from this program alone.
    pub rules: RuleSet,
    /// Learning statistics (Table 1 row).
    pub stats: LearnStats,
}

/// Learn rules from every suite program individually.
///
/// Each program is learned exactly once (its `RuleSet` is kept separate
/// so the twelve leave-one-out sets compose from the other eleven via
/// [`loo_rules`] instead of re-learning), and one verification memo
/// cache is shared across the suite so cross-program snippet repeats
/// verify only once.
///
/// With `LDBT_RULEDB=<path>` set, the verification memo warm-starts
/// from the persistent rule database ([`ldbt_learn::db`]): every
/// signature already memoized on disk skips symexec+SAT entirely, so a
/// second boot replays the suite at ~100% memo hit rate with
/// byte-identical learned rules. After learning, the merged suite rules
/// and the (grown) memo are written back, best-effort. A missing,
/// stale, or corrupt database is reported to stderr and learning falls
/// back to fresh — it never half-loads.
///
/// # Errors
///
/// Returns a [`CompileError`] if a generated program fails to compile.
pub fn learn_all(options: &Options) -> Result<Vec<ProgramRules>, CompileError> {
    let config = LearnConfig::default();
    let db_path = ldbt_learn::db::env_path();
    let mut cache = match &db_path {
        Some(path) => match ldbt_learn::db::load(path) {
            Ok(db) => db.cache,
            Err(ldbt_learn::DbError::Io(_)) => VerifyCache::new(), // first boot
            Err(e) => {
                eprintln!("ldbt: ignoring rule database {}: {e}; learning fresh", path.display());
                VerifyCache::new()
            }
        },
        None => VerifyCache::new(),
    };
    let mut out = Vec::new();
    for b in &SUITE {
        let src = source(b, Workload::Ref);
        let report = learn_from_source_cached(b.name, &src, options, &config, &mut cache)?;
        out.push(ProgramRules {
            name: b.name.to_string(),
            rules: report.rules,
            stats: report.stats,
        });
    }
    if let Some(path) = &db_path {
        let mut merged = RuleSet::new();
        for p in &out {
            merged.merge(&p.rules);
        }
        if let Err(e) = ldbt_learn::db::save(path, &merged, &cache) {
            eprintln!("ldbt: failed to write rule database {}: {e}", path.display());
        }
    }
    Ok(out)
}

/// Assemble the leave-one-out rule set for `exclude` by composing the
/// other programs' already-learned sets ([`RuleSet::merge`] — cross-
/// program dedup and shortest-host selection preserved, and the result
/// is independent of the composition order).
pub fn loo_rules(all: &[ProgramRules], exclude: &str) -> RuleSet {
    let mut rules = RuleSet::new();
    for p in all {
        if p.name != exclude {
            rules.merge(&p.rules);
        }
    }
    rules
}

/// Table 1: the per-benchmark learning statistics.
///
/// Returns `(benchmark, source line count, stats)` rows.
pub fn table1(all: &[ProgramRules]) -> Vec<(&'static Benchmark, usize, LearnStats)> {
    SUITE
        .iter()
        .map(|b| {
            let lines = source(b, Workload::Ref).lines().count();
            let stats =
                all.iter().find(|p| p.name == b.name).map(|p| p.stats.clone()).unwrap_or_default();
            (b, lines, stats)
        })
        .collect()
}

/// Figure 6: rules learned per optimization level.
///
/// # Errors
///
/// Propagates compile errors.
pub fn figure6() -> Result<Vec<(String, [usize; 4])>, CompileError> {
    // One memo cache across all programs *and* levels: snippet
    // signatures are content-based, so repeats between optimization
    // levels verify once too.
    let config = LearnConfig::default();
    let mut cache = VerifyCache::new();
    let mut rows = Vec::new();
    for b in &SUITE {
        let src = source(b, Workload::Ref);
        let mut counts = [0usize; 4];
        for (i, level) in OptLevel::ALL.iter().enumerate() {
            let report = learn_from_source_cached(
                b.name,
                &src,
                &Options { level: *level, style: ldbt_compiler::Style::Llvm },
                &config,
                &mut cache,
            )?;
            counts[i] = report.rules.len();
        }
        rows.push((b.name.to_string(), counts));
    }
    Ok(rows)
}

/// Figure 7's demonstration: at `-O0` the frame-bound code produces
/// operand shapes whose guest/host memory accesses and live-ins diverge,
/// so fewer rules are learned than at `-O2` — the paper's example where a
/// line's live-in registers "cannot be mapped using -O0 due to different
/// numbers".
///
/// Returns `(o0_rules, o0_param_fails, o2_rules, o2_param_fails)` for a
/// representative program (the mcf stand-in).
///
/// # Errors
///
/// Propagates compile errors.
pub fn figure7() -> Result<(usize, usize, usize, usize), CompileError> {
    let b = ldbt_workloads::benchmark("mcf").expect("suite program");
    let src = source(b, Workload::Ref);
    let o0 = learn_from_source("mcf", &src, &Options::level(OptLevel::O0))?;
    let o2 = learn_from_source("mcf", &src, &Options::level(OptLevel::O2))?;
    Ok((
        o0.rules.len(),
        o0.stats.par_num + o0.stats.par_name + o0.stats.par_failg,
        o2.rules.len(),
        o2.stats.par_num + o2.stats.par_name + o2.stats.par_failg,
    ))
}

/// One row of Figures 8/9: speedups over the TCG baseline.
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    /// Benchmark name.
    pub name: String,
    /// Rule-based speedup on the `test` workload.
    pub rules_test: f64,
    /// LLVM-JIT-style speedup on the `test` workload.
    pub jit_test: f64,
    /// Rule-based speedup on the `ref` workload.
    pub rules_ref: f64,
    /// LLVM-JIT-style speedup on the `ref` workload.
    pub jit_ref: f64,
    /// The `ref` rule run (kept for Figures 10–12).
    pub rules_ref_run: BenchRun,
    /// The `ref` baseline run.
    pub base_ref_run: BenchRun,
}

/// Figures 8 (LLVM-built guests) / 9 (GCC-built guests): speedups of the
/// rule prototype and the JIT backend over QEMU-style TCG.
///
/// `guest` selects the compiler style used to build the *guest* binaries;
/// rules always come from LLVM-style learning (`all`).
pub fn speedups(all: &[ProgramRules], guest: &Options) -> Vec<SpeedupRow> {
    SUITE
        .iter()
        .map(|b| {
            let rules = loo_rules(all, b.name);
            let get = |wl: Workload, kind: EngineKind| {
                run_benchmark(
                    b.name,
                    wl,
                    kind,
                    guest,
                    if kind == EngineKind::Rules { Some(&rules) } else { None },
                )
            };
            let base_test = get(Workload::Test, EngineKind::Tcg);
            let rules_test = get(Workload::Test, EngineKind::Rules);
            let jit_test = get(Workload::Test, EngineKind::Jit);
            let base_ref = get(Workload::Ref, EngineKind::Tcg);
            let rules_ref = get(Workload::Ref, EngineKind::Rules);
            let jit_ref = get(Workload::Ref, EngineKind::Jit);
            SpeedupRow {
                name: b.name.to_string(),
                rules_test: rules_test.speedup_over(&base_test),
                jit_test: jit_test.speedup_over(&base_test),
                rules_ref: rules_ref.speedup_over(&base_ref),
                jit_ref: jit_ref.speedup_over(&base_ref),
                rules_ref_run: rules_ref,
                base_ref_run: base_ref,
            }
        })
        .collect()
}

/// Figure 10: percentage of dynamic host instructions removed by the
/// rules relative to the TCG baseline (`ref` workload).
pub fn dynamic_reduction(rows: &[SpeedupRow]) -> Vec<(String, f64)> {
    rows.iter()
        .map(|r| {
            let base = r.base_ref_run.stats.exec.host_instrs as f64;
            let ours = r.rules_ref_run.stats.exec.host_instrs as f64;
            (r.name.clone(), (base - ours) / base)
        })
        .collect()
}

/// Figure 11: static and dynamic rule coverage (`ref` workload).
pub fn coverage(rows: &[SpeedupRow]) -> Vec<(String, f64, f64)> {
    rows.iter()
        .map(|r| {
            (
                r.name.clone(),
                r.rules_ref_run.stats.static_coverage(),
                r.rules_ref_run.stats.dynamic_coverage(),
            )
        })
        .collect()
}

/// Figure 12: length distribution of hit rules per benchmark: for each
/// benchmark, `dist[k]` = fraction of distinct hit rules with length
/// `k+1` (k = 5 collects "6 or more").
pub fn hit_length_distribution(rows: &[SpeedupRow]) -> Vec<(String, [f64; 6])> {
    rows.iter()
        .map(|r| {
            let h = r.rules_ref_run.stats.hit_length_histogram();
            let total: usize = h.values().sum();
            let mut dist = [0f64; 6];
            if total > 0 {
                for (len, count) in h {
                    let bucket = len.clamp(1, 6) - 1;
                    dist[bucket] += count as f64 / total as f64;
                }
            }
            (r.name.clone(), dist)
        })
        .collect()
}

/// Geometric mean helper used in the reported averages.
pub fn geomean(xs: impl Iterator<Item = f64>) -> f64 {
    let (sum, n) = xs.fold((0.0, 0usize), |(s, n), x| (s + x.ln(), n + 1));
    if n == 0 {
        1.0
    } else {
        (sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basic() {
        assert!((geomean([2.0, 8.0].into_iter()) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 1.0);
    }

    #[test]
    fn figure7_probe_shows_optimization_sensitivity() {
        let (o0_rules, _o0_fails, o2_rules, _o2_fails) = figure7().unwrap();
        assert!(o2_rules > 0, "O2 learns from the probe");
        assert!(
            o0_rules < o2_rules,
            "higher optimization levels learn more rules (paper Fig. 6/7): {o0_rules} vs {o2_rules}"
        );
    }

    #[test]
    fn loo_excludes_target_program() {
        // Learn from two tiny programs directly to keep the test fast.
        let mk = |name: &str, src: &str| {
            let r = learn_from_source(name, src, &Options::o2()).unwrap();
            ProgramRules { name: name.into(), rules: r.rules, stats: r.stats }
        };
        let a = mk("a", "int f(int x, int y) { return x + y - 1; }\nint main() { return f(1,2); }");
        let b = mk("b", "int g(int x) { return x ^ 255; }\nint main() { return g(7); }");
        let all = vec![a, b];
        let loo_a = loo_rules(&all, "a");
        let loo_none = loo_rules(&all, "zzz");
        assert!(loo_a.len() <= loo_none.len());
    }
}
