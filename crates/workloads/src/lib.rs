#![forbid(unsafe_code)]
//! The synthetic SPEC CINT2006 stand-in suite.
//!
//! The paper evaluates on the twelve SPEC CINT2006 programs, which we do
//! not have (nor the cross-compilers to build them). This crate generates
//! twelve deterministic mini-C programs named after them, with:
//!
//! * source sizes scaled to the real suite's relative LoC (Table 1), so
//!   per-benchmark learning statistics have the same orderings,
//! * kernels drawn from the integer idioms those benchmarks are known
//!   for — hashing and string-ish scans (perlbench), block transforms
//!   (bzip2), table-driven dispatch (gcc), pointer-chasing-style index
//!   loops (mcf), board evaluation ladders (gobmk), dynamic-programming
//!   inner loops (hmmer), minimax-ish counters (sjeng), bit-twiddling
//!   (libquantum), sliding-window sums (h264ref), event counters
//!   (omnetpp), grid scans (astar), and tree-walk-ish loops (xalancbmk),
//! * a `test` and a `ref` workload differing only in iteration counts
//!   (the paper's short- vs long-running comparison),
//! * a self-checksum: the result is accumulated into a global and
//!   returned, so any engine can be validated against the interpreter.

pub mod asm;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Which input size to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Short-running (translation overhead dominates).
    Test,
    /// Long-running (code quality dominates).
    Ref,
}

/// One benchmark of the suite.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Benchmark {
    /// SPEC-style name.
    pub name: &'static str,
    /// Source size of the real benchmark, in K LoC (Table 1).
    pub loc_k: f64,
    /// Whether the real program is C++ (affects nothing but reporting).
    pub cpp: bool,
    /// Generation seed.
    pub seed: u64,
}

/// The twelve benchmarks, in Table 1 order.
pub const SUITE: [Benchmark; 12] = [
    Benchmark { name: "perlbench", loc_k: 128.0, cpp: false, seed: 11 },
    Benchmark { name: "bzip2", loc_k: 5.7, cpp: false, seed: 22 },
    Benchmark { name: "gcc", loc_k: 386.0, cpp: false, seed: 33 },
    Benchmark { name: "mcf", loc_k: 1.6, cpp: false, seed: 44 },
    Benchmark { name: "gobmk", loc_k: 158.0, cpp: false, seed: 55 },
    Benchmark { name: "hmmer", loc_k: 40.7, cpp: false, seed: 66 },
    Benchmark { name: "sjeng", loc_k: 10.5, cpp: false, seed: 77 },
    Benchmark { name: "libquantum", loc_k: 2.6, cpp: false, seed: 88 },
    Benchmark { name: "h264ref", loc_k: 36.0, cpp: false, seed: 99 },
    Benchmark { name: "omnetpp", loc_k: 26.7, cpp: true, seed: 111 },
    Benchmark { name: "astar", loc_k: 4.3, cpp: true, seed: 122 },
    Benchmark { name: "xalancbmk", loc_k: 267.0, cpp: true, seed: 133 },
];

/// Find a benchmark by name.
pub fn benchmark(name: &str) -> Option<&'static Benchmark> {
    SUITE.iter().find(|b| b.name == name)
}

/// Number of generated kernel functions for a benchmark (LoC-scaled).
pub fn kernel_count(b: &Benchmark) -> usize {
    (3.0 + b.loc_k.sqrt() * 1.1).round().min(25.0) as usize
}

struct Gen {
    rng: StdRng,
    src: String,
    locals: Vec<String>,
}

impl Gen {
    fn pick<'a>(&mut self, items: &'a [String]) -> &'a str {
        let i = self.rng.gen_range(0..items.len());
        &items[i]
    }

    fn small(&mut self) -> i32 {
        self.rng.gen_range(1..64)
    }

    /// A random simple expression over the locals.
    fn expr(&mut self, depth: u32) -> String {
        if depth == 0 || self.rng.gen_bool(0.35) {
            return if self.rng.gen_bool(0.5) {
                let locals = self.locals.clone();
                self.pick(&locals).to_string()
            } else {
                format!("{}", self.small())
            };
        }
        let a = self.expr(depth - 1);
        let b = self.expr(depth - 1);
        let op = ["+", "-", "*", "&", "|", "^"][self.rng.gen_range(0..6)];
        format!("({a} {op} {b})")
    }
}

fn kernel(g: &mut Gen, idx: usize, arrays: &[String]) {
    let name = format!("k{idx}");
    let shape = g.rng.gen_range(0..8);
    let arr = arrays[g.rng.gen_range(0..arrays.len())].clone();
    let arr2 = arrays[g.rng.gen_range(0..arrays.len())].clone();
    let c1 = g.small();
    let c2 = g.small();
    let sh = g.rng.gen_range(1..5);
    let mul = [3, 5, 7, 9, 599, 33][g.rng.gen_range(0..6)];
    let mask = [0xff, 0x3f, 0xfff, 0x1f][g.rng.gen_range(0..4)];
    g.locals = vec!["a".into(), "b".into(), "s".into(), "i".into()];
    match shape {
        0 => {
            // Hash/mix loop (perl/gcc style).
            let _ = write!(
                g.src,
                "int {name}(int a, int b) {{
  int s = a ^ {c1};
  for (int i = 0; i < b; i += 1) {{
    s = (s + i) * {mul};
    s = s ^ (s >> {sh});
    s = s & 0xffffff;
  }}
  return s;
}}\n"
            );
        }
        1 => {
            // Array scan with conditional accumulation.
            let e = g.expr(2);
            let _ = write!(
                g.src,
                "int {name}(int a, int b) {{
  int s = 0;
  for (int i = 0; i < a; i += 1) {{
    int v = {arr}[i & 63];
    if (v > b) {{ s += v - b; }} else {{ s += {e}; }}
  }}
  return s;
}}\n"
            );
        }
        2 => {
            // Table-lookup chain.
            let _ = write!(
                g.src,
                "int {name}(int a, int b) {{
  int s = b;
  for (int i = 0; i < a; i += 1) {{
    int j = {arr}[i & 63] & 63;
    s += {arr2}[j] + {c2};
  }}
  return s & {mask};
}}\n"
            );
        }
        3 => {
            // Write-heavy transform.
            let _ = write!(
                g.src,
                "int {name}(int a, int b) {{
  for (int i = 0; i < a; i += 1) {{
    {arr}[i & 63] = (b + i * {c1}) ^ {c2};
  }}
  return {arr}[b & 63];
}}\n"
            );
        }
        4 => {
            // Nested loops (DP / matrix style).
            let _ = write!(
                g.src,
                "int {name}(int a, int b) {{
  int s = 0;
  for (int i = 0; i < a; i += 1) {{
    for (int j = 0; j < 4; j += 1) {{
      s += {arr}[(i + j) & 63] * (j + {c1});
    }}
    if (s > 1000000) {{ s -= b; }}
  }}
  return s;
}}\n"
            );
        }
        5 => {
            // Bit twiddling (libquantum style).
            let _ = write!(
                g.src,
                "int {name}(int a, int b) {{
  int s = a;
  int i = 0;
  while (i < b) {{
    s = (s << 1) ^ (s >> {sh});
    s = s + (s & {mask});
    i += 1;
  }}
  return s & 0xffffff;
}}\n"
            );
        }
        6 => {
            // Comparisons as values (predicated moves on the guest side —
            // these snippets hit Table 1's "PI" preparation filter).
            let _ = write!(
                g.src,
                "int {name}(int a, int b) {{
  int s = 0;
  for (int i = 0; i < a; i += 1) {{
    int v = {arr}[i & 63];
    s += (v > b) + (v == {c1});
    s += (v < s) * {c2};
  }}
  return s;
}}\n"
            );
        }
        _ => {
            // Branchy ladder (board evaluation style).
            let e1 = g.expr(1);
            let e2 = g.expr(1);
            let _ = write!(
                g.src,
                "int {name}(int a, int b) {{
  int s = 0;
  for (int i = 0; i < a; i += 1) {{
    int v = (i * {c1}) & {mask};
    if (v < {c2}) {{ s += {e1}; }}
    else if (v < {c2} + 16) {{ s += v; }}
    else if (v & 1) {{ s -= {e2}; }}
    else {{ s += b; }}
  }}
  return s;
}}\n"
            );
        }
    }
}

/// Generate the benchmark's source for a workload.
pub fn source(b: &Benchmark, workload: Workload) -> String {
    let mut g = Gen { rng: StdRng::seed_from_u64(b.seed), src: String::new(), locals: vec![] };
    let _ = writeln!(g.src, "// synthetic stand-in for {}", b.name);
    let _ = writeln!(g.src, "int checksum;");
    let arrays: Vec<String> = (0..3).map(|i| format!("tbl{i}")).collect();
    for a in &arrays {
        let _ = writeln!(g.src, "int {a}[64];");
    }
    let nk = kernel_count(b);
    for k in 0..nk {
        kernel(&mut g, k, &arrays);
    }
    let reps = match workload {
        Workload::Test => 2,
        // Heavier for small benchmarks so ref running time is comparable.
        Workload::Ref => (600.0 / (1.0 + b.loc_k.sqrt())).round().max(25.0) as i32,
    };
    let inner = g.rng.gen_range(24..40);
    let _ = writeln!(g.src, "int main() {{");
    let _ = writeln!(
        g.src,
        "  for (int i = 0; i < 64; i += 1) {{ tbl0[i] = i * 7; tbl1[i] = i ^ 21; tbl2[i] = 63 - i; }}"
    );
    let _ = writeln!(g.src, "  int acc = 0;");
    let _ = writeln!(g.src, "  for (int r = 0; r < {reps}; r += 1) {{");
    for k in 0..nk {
        let _ = writeln!(g.src, "    acc += k{k}({inner}, (r & 15) + {});", k % 7 + 1);
    }
    let _ = writeln!(g.src, "    acc = acc & 0xffffff;");
    let _ = writeln!(g.src, "  }}");
    let _ = writeln!(g.src, "  checksum = acc;");
    let _ = writeln!(g.src, "  return acc & 255;");
    let _ = writeln!(g.src, "}}");
    g.src
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldbt_compiler::{link::build_arm_image, Options};

    #[test]
    fn suite_has_twelve() {
        assert_eq!(SUITE.len(), 12);
        assert_eq!(benchmark("mcf").unwrap().loc_k, 1.6);
        assert!(benchmark("nope").is_none());
    }

    #[test]
    fn generation_is_deterministic() {
        let b = benchmark("sjeng").unwrap();
        assert_eq!(source(b, Workload::Ref), source(b, Workload::Ref));
        assert_ne!(source(b, Workload::Ref), source(b, Workload::Test));
    }

    #[test]
    fn sizes_scale_with_loc() {
        let mcf = source(benchmark("mcf").unwrap(), Workload::Ref).lines().count();
        let gcc = source(benchmark("gcc").unwrap(), Workload::Ref).lines().count();
        assert!(gcc > 2 * mcf, "gcc {gcc} lines vs mcf {mcf}");
    }

    #[test]
    fn all_benchmarks_compile_and_halt() {
        for b in &SUITE {
            let src = source(b, Workload::Test);
            let image = build_arm_image(&src, &Options::o2())
                .unwrap_or_else(|e| panic!("{}: {e}\n{src}", b.name));
            let mut m = ldbt_arm::ArmMachine::new();
            image.load_into(&mut m.state.mem);
            m.state.regs[15] = image.entry;
            let stop = m.run(80_000_000);
            assert_eq!(stop, ldbt_arm::ArmStop::Halt, "{} did not halt", b.name);
        }
    }

    #[test]
    fn checksums_agree_across_configs() {
        use ldbt_compiler::{OptLevel, Style};
        let b = benchmark("libquantum").unwrap();
        let src = source(b, Workload::Test);
        let mut sums = Vec::new();
        for style in [Style::Llvm, Style::Gcc] {
            for level in [OptLevel::O0, OptLevel::O2] {
                let image = build_arm_image(&src, &Options { level, style }).unwrap();
                let mut m = ldbt_arm::ArmMachine::new();
                image.load_into(&mut m.state.mem);
                m.state.regs[15] = image.entry;
                assert_eq!(m.run(80_000_000), ldbt_arm::ArmStop::Halt);
                sums.push(m.state.reg(ldbt_arm::ArmReg::R0));
            }
        }
        assert!(sums.windows(2).all(|w| w[0] == w[1]), "{sums:?}");
    }

    #[test]
    fn ref_is_longer_than_test() {
        let b = benchmark("astar").unwrap();
        for (w, budget) in [(Workload::Test, 80_000_000u64), (Workload::Ref, 200_000_000)] {
            let src = source(b, w);
            let image = build_arm_image(&src, &Options::o2()).unwrap();
            let mut m = ldbt_arm::ArmMachine::new();
            image.load_into(&mut m.state.mem);
            m.state.regs[15] = image.entry;
            assert_eq!(m.run(budget), ldbt_arm::ArmStop::Halt, "{w:?}");
            if w == Workload::Test {
                assert!(m.steps < 3_000_000, "test workload too heavy: {}", m.steps);
            } else {
                assert!(m.steps > 100_000, "ref workload too light: {}", m.steps);
            }
        }
    }
}
