//! Hand-assembled guest workloads for the coherence and trap layers.
//!
//! The synthetic C suite never writes its own code and never faults, so
//! the translation-cache coherence path (self-modifying code) and the
//! guest trap path (supervisor calls, wild accesses) need dedicated
//! images. These are assembled directly from [`ArmInstr`]s into an
//! [`ArmImage`] — no compiler involved — so the exact byte layout the
//! store-hit detection works on is pinned by this file.

use ldbt_arm::{encode, AddrMode, ArmInstr, ArmReg, Cond, DpOp, Operand2, Shift};
use ldbt_compiler::link::{ArmImage, CODE_BASE};

/// Word index of the patched body instruction inside [`smc_image`].
pub const SMC_BODY_WORD: u32 = 6;

/// Final `r0` of [`smc_image`]: 32 outer iterations, each running the
/// 8-iteration inner loop with the patched immediate `5 + i`, so
/// `sum(8 * (5 + i) for i in 0..32)`.
pub const SMC_RESULT: u32 = 8 * (32 * 5 + 31 * 32 / 2);

/// Guest address of the two-word mailbox block shared by the
/// mini-kernel processes (word 0: process A's value, word 4: B's).
pub const MAILBOX_BASE: u32 = 0x0002_0000;

fn mov(rd: ArmReg, op2: Operand2) -> ArmInstr {
    ArmInstr::mov(rd, op2)
}

fn add(rd: ArmReg, rn: ArmReg, op2: Operand2) -> ArmInstr {
    ArmInstr::dp(DpOp::Add, rd, rn, op2)
}

fn subs(rd: ArmReg, rn: ArmReg, op2: Operand2) -> ArmInstr {
    ArmInstr::dps(DpOp::Sub, rd, rn, op2)
}

fn bne(from_word: i32, to_word: i32) -> ArmInstr {
    // Branch targets are word offsets relative to the *next* instruction.
    ArmInstr::B { offset: to_word - (from_word + 1), cond: Cond::Ne }
}

fn svc(imm: u32) -> ArmInstr {
    ArmInstr::Svc { imm, cond: Cond::Al }
}

/// Assemble `instrs` into an image loaded at [`CODE_BASE`].
fn image(instrs: &[ArmInstr], funcs: &[(&str, u32)]) -> ArmImage {
    let bytes = encode::assemble(instrs).expect("hand-assembled workload must encode");
    ArmImage {
        bytes,
        base: CODE_BASE,
        entry: CODE_BASE,
        func_addrs: funcs.iter().map(|(n, w)| (n.to_string(), CODE_BASE + 4 * w)).collect(),
        meta: Vec::new(),
        globals: Vec::new(),
    }
}

/// A loop that rewrites its own body: each outer iteration loads the
/// encoding of the inner-loop `add r0, r0, #imm`, bumps the immediate
/// field by one, and stores it back — so the 8-iteration inner loop adds
/// `5, 6, 7, …` across the 32 outer iterations. Halts via `svc #0` with
/// [`SMC_RESULT`] in `r0`.
///
/// The store at word 11 lands inside the translated inner-loop block
/// (words 6–8) *and* the outer-loop block (words 5–8), so a DBT must
/// invalidate both and re-translate on the next dispatch; the inner
/// block runs 256 times, hot enough for chaining, IBTC, and superblock
/// formation to all be live when the patch hits.
pub fn smc_image() -> ArmImage {
    use ArmReg::{R0, R2, R3, R4, R5};
    let body_addr = 4 * SMC_BODY_WORD; // offset from CODE_BASE
    let prog = [
        // r4 = &body (CODE_BASE is not a valid 12-bit immediate).
        /* 0 */
        mov(R4, Operand2::Imm(1)),
        /* 1 */ mov(R4, Operand2::RegShift(R4, Shift::Lsl(16))),
        /* 2 */ add(R4, R4, Operand2::Imm(body_addr)),
        /* 3 */ mov(R0, Operand2::Imm(0)), // accumulator
        /* 4 */ mov(R2, Operand2::Imm(32)), // outer counter
        // outer:
        /* 5 */ mov(R3, Operand2::Imm(8)), // inner counter
        // inner (the patched body):
        /* 6 */ add(R0, R0, Operand2::Imm(5)),
        /* 7 */ subs(R3, R3, Operand2::Imm(1)),
        /* 8 */ bne(8, 6),
        // Patch: imm lives in the low 12 bits of the word, so +1 on the
        // encoding is +1 on the immediate (it never nears 4096 here).
        /* 9 */
        ArmInstr::ldr(R5, AddrMode::Imm(R4, 0)),
        /* 10 */ add(R5, R5, Operand2::Imm(1)),
        /* 11 */ ArmInstr::str(R5, AddrMode::Imm(R4, 0)),
        /* 12 */ subs(R2, R2, Operand2::Imm(1)),
        /* 13 */ bne(13, 5),
        /* 14 */ svc(0),
    ];
    image(&prog, &[("smc_loop", 0)])
}

/// Two cooperative "processes" plus one that faults, for a host-side
/// mini-kernel to schedule (see `ldbt-core`'s kernel driver). Each
/// process yields with `svc #1` and exits with `svc #2`; they exchange
/// partial sums through the [`MAILBOX_BASE`] mailboxes, so the final
/// state depends on the kernel's scheduling order. `proc_wild` stores
/// far outside guest memory and must be killed by a `Mem` trap before
/// reaching its `svc #2`.
///
/// No flags are live across a yield (each `svc #1` is followed by a
/// flag-setting `subs`), so a kernel context is exactly `r0`–`r14` + pc.
pub fn mini_kernel_image() -> ArmImage {
    use ArmReg::{R0, R1, R2, R4, R6};
    let mailbox = |r4: ArmReg| {
        [
            mov(r4, Operand2::Imm(2)),
            mov(r4, Operand2::RegShift(r4, Shift::Lsl(16))), // r4 = MAILBOX_BASE
        ]
    };
    let mut prog = Vec::new();
    // proc_a (words 0..12): 12 rounds, reads B's mailbox, adds 3.
    prog.extend(mailbox(R4));
    prog.extend([
        /* 2 */ mov(R0, Operand2::Imm(0)),
        /* 3 */ mov(R1, Operand2::Imm(12)),
        // a_loop:
        /* 4 */ ArmInstr::ldr(R2, AddrMode::Imm(R4, 4)),
        /* 5 */ add(R0, R0, Operand2::Reg(R2)),
        /* 6 */ add(R0, R0, Operand2::Imm(3)),
        /* 7 */ ArmInstr::str(R0, AddrMode::Imm(R4, 0)),
        /* 8 */ svc(1),
        /* 9 */ subs(R1, R1, Operand2::Imm(1)),
        /* 10 */ bne(10, 4),
        /* 11 */ svc(2),
    ]);
    // proc_b (words 12..24): 9 rounds, reads A's mailbox, adds 5.
    prog.extend(mailbox(R4));
    prog.extend([
        /* 14 */ mov(R0, Operand2::Imm(0)),
        /* 15 */ mov(R1, Operand2::Imm(9)),
        // b_loop:
        /* 16 */ ArmInstr::ldr(R2, AddrMode::Imm(R4, 0)),
        /* 17 */ add(R0, R0, Operand2::Reg(R2)),
        /* 18 */ add(R0, R0, Operand2::Imm(5)),
        /* 19 */ ArmInstr::str(R0, AddrMode::Imm(R4, 4)),
        /* 20 */ svc(1),
        /* 21 */ subs(R1, R1, Operand2::Imm(1)),
        /* 22 */ bne(22, 16),
        /* 23 */ svc(2),
    ]);
    // proc_wild (words 24..27): a store at ~4 GiB must raise a Mem trap.
    prog.extend([
        /* 24 */
        ArmInstr::dp(DpOp::Mvn, R6, R0, Operand2::Imm(7)), // r6 = !7 = 0xffff_fff8
        /* 25 */ ArmInstr::str(R0, AddrMode::Imm(R6, 0)),
        /* 26 */ svc(2), // unreachable: the kernel kills the process
    ]);
    image(&prog, &[("proc_a", 0), ("proc_b", 12), ("proc_wild", 24)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldbt_arm::{ArmMachine, ArmStop, ArmTrapCause};

    #[test]
    fn smc_halts_with_expected_sum_on_the_interpreter() {
        let img = smc_image();
        let mut m = ArmMachine::new();
        img.load_into(&mut m.state.mem);
        m.state.regs[15] = img.entry;
        assert_eq!(m.run(1_000_000), ArmStop::Halt);
        assert_eq!(m.state.reg(ArmReg::R0), SMC_RESULT);
    }

    #[test]
    fn smc_actually_rewrites_its_body() {
        let img = smc_image();
        let mut m = ArmMachine::new();
        img.load_into(&mut m.state.mem);
        let body = CODE_BASE + 4 * SMC_BODY_WORD;
        let before = m.state.mem.read(body, ldbt_isa::Width::W32);
        m.state.regs[15] = img.entry;
        assert_eq!(m.run(1_000_000), ArmStop::Halt);
        let after = m.state.mem.read(body, ldbt_isa::Width::W32);
        assert_eq!(after, before + 32, "32 outer iterations bump the imm field by 1 each");
        // The patched word still decodes to the same instruction shape.
        assert_eq!(
            encode::decode(after).unwrap(),
            add(ArmReg::R0, ArmReg::R0, Operand2::Imm(5 + 32))
        );
    }

    #[test]
    fn mini_kernel_procs_yield_exit_and_fault_on_the_interpreter() {
        let img = mini_kernel_image();
        let entry =
            |name: &str| img.func_addrs.iter().find(|(n, _)| n == name).map(|&(_, a)| a).unwrap();
        // proc_a run solo: yields at word 8, first time with r0 == 3.
        let mut m = ArmMachine::new();
        img.load_into(&mut m.state.mem);
        m.state.regs[15] = entry("proc_a");
        let stop = m.run(1_000_000);
        assert_eq!(stop, ArmStop::Trap { pc: CODE_BASE + 4 * 8, cause: ArmTrapCause::Svc(1) });
        assert_eq!(m.state.reg(ArmReg::R0), 3);
        assert_eq!(m.state.mem.read(MAILBOX_BASE, ldbt_isa::Width::W32), 3);
        // proc_wild: dies on the wild store, never reaches its svc #2.
        // (The standalone interpreter only range-checks when a driver
        // opts in; the DBT's drivers pass the engine's guest limit.)
        let mut m = ArmMachine::new();
        m.state.trap_limit = Some(0x0080_0000);
        img.load_into(&mut m.state.mem);
        m.state.regs[15] = entry("proc_wild");
        let stop = m.run(1_000_000);
        assert_eq!(
            stop,
            ArmStop::Trap { pc: CODE_BASE + 4 * 25, cause: ArmTrapCause::Mem(0xffff_fff8) }
        );
    }
}
