//! Symbolic execution of ARM instruction sequences.

use crate::common::{
    add_with_carry, nz_of, ImmBinder, ImmRole, MemOracle, StoreEntry, StoreLog, SymFlags, SymHazard,
};
use ldbt_arm::{AddrMode, ArmInstr, ArmReg, Cond, DpOp, Operand2, Shift};
use ldbt_isa::Width;
use ldbt_smt::{TermId, TermPool};

/// A symbolic ARM register/flag state.
#[derive(Debug, Clone)]
pub struct SymArmState {
    /// One term per register.
    pub regs: [TermId; 16],
    /// Symbolic NZCV.
    pub flags: SymFlags,
}

impl SymArmState {
    /// A state whose registers are fresh variables `r0…r15` (prefixable)
    /// and whose flags are fresh variables.
    pub fn fresh(pool: &mut TermPool, prefix: &str) -> SymArmState {
        let regs = std::array::from_fn(|i| pool.var(&format!("{prefix}r{i}"), 32));
        SymArmState { regs, flags: SymFlags::fresh(pool, prefix) }
    }

    /// Read a register term.
    pub fn reg(&self, r: ArmReg) -> TermId {
        self.regs[r.index()]
    }

    /// Write a register term.
    pub fn set_reg(&mut self, r: ArmReg, t: TermId) {
        self.regs[r.index()] = t;
    }
}

/// What a symbolic ARM execution produced.
#[derive(Debug, Clone)]
pub struct ArmSymOutcome {
    /// Final register/flag state.
    pub state: SymArmState,
    /// Registers written by the sequence, in first-write order.
    pub defined_regs: Vec<ArmReg>,
    /// NZCV mask of flags written (N=8, Z=4, C=2, V=1).
    pub flags_defined: u8,
    /// The store log.
    pub stores: Vec<StoreEntry>,
    /// Branch-taken condition if the sequence ends in a conditional
    /// branch (`None` for plain straight-line code).
    pub branch_cond: Option<TermId>,
}

fn shift_sym(
    pool: &mut TermPool,
    value: TermId,
    shift: Option<Shift>,
    carry_in: TermId,
) -> (TermId, TermId) {
    let Some(shift) = shift else {
        return (value, carry_in);
    };
    let amt = shift.amount() as u32 & 31;
    if amt == 0 {
        return (value, carry_in);
    }
    let amt_t = pool.constant(amt as u64, 32);
    match shift {
        Shift::Lsl(_) => {
            let r = pool.shl(value, amt_t);
            let c = pool.extract(value, 32 - amt, 32 - amt);
            (r, c)
        }
        Shift::Lsr(_) => {
            let r = pool.lshr(value, amt_t);
            let c = pool.extract(value, amt - 1, amt - 1);
            (r, c)
        }
        Shift::Asr(_) => {
            let r = pool.ashr(value, amt_t);
            let c = pool.extract(value, amt - 1, amt - 1);
            (r, c)
        }
        Shift::Ror(_) => {
            let lo = pool.lshr(value, amt_t);
            let inv = pool.constant((32 - amt) as u64, 32);
            let hi = pool.shl(value, inv);
            let r = pool.or_(lo, hi);
            let c = pool.extract(r, 31, 31);
            (r, c)
        }
    }
}

fn addr_term(
    pool: &mut TermPool,
    state: &SymArmState,
    addr: AddrMode,
    binder: &mut ImmBinder,
    idx: usize,
) -> TermId {
    match addr {
        AddrMode::Imm(rn, off) => {
            let base = state.reg(rn);
            let off_t = binder(pool, idx, ImmRole::MemOffset, off as i64);
            pool.add(base, off_t)
        }
        AddrMode::Reg(rn, rm) => {
            let base = state.reg(rn);
            let index = state.reg(rm);
            pool.add(base, index)
        }
        AddrMode::RegShift(rn, rm, s) => {
            let base = state.reg(rn);
            let sh = pool.constant(s as u64, 32);
            let scaled = pool.shl(state.reg(rm), sh);
            pool.add(base, scaled)
        }
    }
}

fn cond_term(pool: &mut TermPool, f: &SymFlags, cond: Cond) -> TermId {
    match cond {
        Cond::Eq => f.z,
        Cond::Ne => pool.not_(f.z),
        Cond::Cs => f.c,
        Cond::Cc => pool.not_(f.c),
        Cond::Mi => f.n,
        Cond::Pl => pool.not_(f.n),
        Cond::Vs => f.v,
        Cond::Vc => pool.not_(f.v),
        Cond::Hi => {
            let nz = pool.not_(f.z);
            pool.and_(f.c, nz)
        }
        Cond::Ls => {
            let nc = pool.not_(f.c);
            pool.or_(nc, f.z)
        }
        Cond::Ge => {
            let x = pool.xor_(f.n, f.v);
            pool.not_(x)
        }
        Cond::Lt => pool.xor_(f.n, f.v),
        Cond::Gt => {
            let x = pool.xor_(f.n, f.v);
            let ge = pool.not_(x);
            let nz = pool.not_(f.z);
            pool.and_(ge, nz)
        }
        Cond::Le => {
            let lt = pool.xor_(f.n, f.v);
            pool.or_(f.z, lt)
        }
        Cond::Al => pool.tru(),
    }
}

/// Symbolically execute an ARM sequence.
///
/// `binder` decides how immediates become terms (constants or rule
/// parameters). The sequence may end in a conditional branch; any other
/// control flow, predication, or undecidable memory aliasing yields a
/// [`SymHazard`].
pub fn exec_arm_seq(
    pool: &mut TermPool,
    seq: &[ArmInstr],
    init: SymArmState,
    oracle: &mut MemOracle,
    binder: &mut ImmBinder,
) -> Result<ArmSymOutcome, SymHazard> {
    exec_arm_seq_fuel(pool, seq, init, oracle, binder, usize::MAX)
}

/// [`exec_arm_seq`] with an explicit step-fuel budget: executing more
/// than `fuel` instructions yields [`SymHazard::OutOfFuel`] instead of
/// running unboundedly on adversarial or degenerate snippets.
pub fn exec_arm_seq_fuel(
    pool: &mut TermPool,
    seq: &[ArmInstr],
    init: SymArmState,
    oracle: &mut MemOracle,
    binder: &mut ImmBinder,
    fuel: usize,
) -> Result<ArmSymOutcome, SymHazard> {
    let mut state = init;
    let mut defined: Vec<ArmReg> = Vec::new();
    let mut flags_defined = 0u8;
    let mut log = StoreLog::new();
    let mut branch_cond = None;

    let define = |defined: &mut Vec<ArmReg>, r: ArmReg| {
        if !defined.contains(&r) {
            defined.push(r);
        }
    };

    for (idx, instr) in seq.iter().enumerate() {
        if idx >= fuel {
            return Err(SymHazard::OutOfFuel);
        }
        if branch_cond.is_some() {
            return Err(SymHazard::MidBlockBranch);
        }
        if instr.is_predicated() {
            return Err(SymHazard::Unsupported("predicated instruction"));
        }
        match *instr {
            ArmInstr::Dp { op, rd, rn, op2, set_flags, .. } => {
                let (b, shifter_c) = match op2 {
                    Operand2::Imm(v) => {
                        let t = binder(pool, idx, ImmRole::Data, v as i64);
                        (t, state.flags.c)
                    }
                    Operand2::Reg(r) => (state.reg(r), state.flags.c),
                    Operand2::RegShift(r, s) => {
                        let val = state.reg(r);
                        shift_sym(pool, val, Some(s), state.flags.c)
                    }
                };
                let a = if op.is_move() { pool.constant(0, 32) } else { state.reg(rn) };
                let one = pool.tru();
                let zero = pool.fls();
                let (value, c, v) = match op {
                    DpOp::And | DpOp::Tst => (pool.and_(a, b), shifter_c, state.flags.v),
                    DpOp::Eor | DpOp::Teq => (pool.xor_(a, b), shifter_c, state.flags.v),
                    DpOp::Orr => (pool.or_(a, b), shifter_c, state.flags.v),
                    DpOp::Bic => {
                        let nb = pool.not_(b);
                        (pool.and_(a, nb), shifter_c, state.flags.v)
                    }
                    DpOp::Mov => (b, shifter_c, state.flags.v),
                    DpOp::Mvn => (pool.not_(b), shifter_c, state.flags.v),
                    DpOp::Add | DpOp::Cmn => {
                        let (r, c, v) = add_with_carry(pool, a, b, zero);
                        (r, c, v)
                    }
                    DpOp::Adc => {
                        let (r, c, v) = add_with_carry(pool, a, b, state.flags.c);
                        (r, c, v)
                    }
                    DpOp::Sub | DpOp::Cmp => {
                        let nb = pool.not_(b);
                        let (r, c, v) = add_with_carry(pool, a, nb, one);
                        (r, c, v)
                    }
                    DpOp::Sbc => {
                        let nb = pool.not_(b);
                        let (r, c, v) = add_with_carry(pool, a, nb, state.flags.c);
                        (r, c, v)
                    }
                    DpOp::Rsb => {
                        let na = pool.not_(a);
                        let (r, c, v) = add_with_carry(pool, b, na, one);
                        (r, c, v)
                    }
                };
                if set_flags {
                    let (n, z) = nz_of(pool, value);
                    state.flags.n = n;
                    state.flags.z = z;
                    flags_defined |= 0b1100;
                    if op.is_arithmetic() {
                        state.flags.c = c;
                        state.flags.v = v;
                        flags_defined |= 0b0011;
                    } else {
                        state.flags.c = c; // shifter carry (may be pass-through)
                        if matches!(op2, Operand2::RegShift(_, _)) {
                            flags_defined |= 0b0010;
                        }
                    }
                }
                if !op.is_compare() {
                    state.set_reg(rd, value);
                    define(&mut defined, rd);
                }
            }
            ArmInstr::Mul { rd, rn, rm, set_flags, .. } => {
                let a = state.reg(rn);
                let b = state.reg(rm);
                let value = pool.mul(a, b);
                if set_flags {
                    let (n, z) = nz_of(pool, value);
                    state.flags.n = n;
                    state.flags.z = z;
                    flags_defined |= 0b1100;
                }
                state.set_reg(rd, value);
                define(&mut defined, rd);
            }
            ArmInstr::Ldr { rt, addr, width, signed, .. } => {
                let a = addr_term(pool, &state, addr, binder, idx);
                let raw = log.load(pool, oracle, a, width)?;
                let v = match (width, signed) {
                    (Width::W32, _) => raw,
                    (_, true) => pool.sext(raw, 32),
                    (_, false) => pool.zext(raw, 32),
                };
                state.set_reg(rt, v);
                define(&mut defined, rt);
            }
            ArmInstr::Str { rt, addr, width, .. } => {
                let a = addr_term(pool, &state, addr, binder, idx);
                let full = state.reg(rt);
                let value = if width == Width::W32 {
                    full
                } else {
                    pool.extract(full, width.bits() - 1, 0)
                };
                log.push(StoreEntry { addr: a, value, width });
            }
            ArmInstr::B { cond, .. } => {
                if idx + 1 != seq.len() {
                    return Err(SymHazard::MidBlockBranch);
                }
                branch_cond = Some(cond_term(pool, &state.flags, cond));
            }
            ArmInstr::Bl { .. } => return Err(SymHazard::Unsupported("call")),
            ArmInstr::Bx { .. } => return Err(SymHazard::Unsupported("indirect branch")),
            ArmInstr::Svc { .. } => return Err(SymHazard::Unsupported("svc")),
        }
    }
    Ok(ArmSymOutcome {
        state,
        defined_regs: defined,
        flags_defined,
        stores: log.entries().to_vec(),
        branch_cond,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::concrete_imms;
    use ldbt_arm::ArmInstr as I;
    use std::collections::HashMap;

    fn exec(seq: &[I]) -> (TermPool, ArmSymOutcome) {
        let mut pool = TermPool::new();
        let init = SymArmState::fresh(&mut pool, "");
        let mut oracle = MemOracle::new();
        let out = exec_arm_seq(&mut pool, seq, init, &mut oracle, &mut concrete_imms).unwrap();
        (pool, out)
    }

    #[test]
    fn straight_line_add() {
        let (pool, out) =
            exec(&[I::dp(DpOp::Add, ArmReg::R1, ArmReg::R1, Operand2::Reg(ArmReg::R0))]);
        assert_eq!(out.defined_regs, vec![ArmReg::R1]);
        assert_eq!(out.flags_defined, 0);
        assert_eq!(pool.display(out.state.reg(ArmReg::R1)), "(+ r0 r1)");
    }

    #[test]
    fn figure1_guest_sequence() {
        // add r0, r0, r1 ; sub r0, r0, #5 — the value must fold into
        // r0 + r1 + (-5).
        let (pool, out) = exec(&[
            I::dp(DpOp::Add, ArmReg::R0, ArmReg::R0, Operand2::Reg(ArmReg::R1)),
            I::dp(DpOp::Sub, ArmReg::R0, ArmReg::R0, Operand2::Imm(5)),
        ]);
        let mut p2 = pool.clone();
        let r0 = p2.var("r0", 32);
        let r1 = p2.var("r1", 32);
        let s = p2.add(r0, r1);
        let m5 = p2.constant((-5i64) as u64, 32);
        let want = p2.add(s, m5);
        assert_eq!(out.state.reg(ArmReg::R0), want);
    }

    #[test]
    fn flags_of_subs_match_concrete() {
        let seq = [I::dps(DpOp::Sub, ArmReg::R2, ArmReg::R0, Operand2::Reg(ArmReg::R1))];
        let (pool, out) = exec(&seq);
        assert_eq!(out.flags_defined, 0b1111);
        // Evaluate under a concrete env and compare with the interpreter.
        for (a, b) in [(5u32, 3u32), (3, 5), (7, 7), (0x8000_0000, 1)] {
            let mut env = HashMap::new();
            // Symbols r0..r15 were created in order by fresh().
            env.insert(0u32, a as u64);
            env.insert(1u32, b as u64);
            let mut st = ldbt_arm::ArmState::new();
            st.set_reg(ArmReg::R0, a);
            st.set_reg(ArmReg::R1, b);
            st.exec(&seq[0]);
            assert_eq!(pool.eval(out.state.flags.n, &env) == 1, st.flags.n, "n {a} {b}");
            assert_eq!(pool.eval(out.state.flags.z, &env) == 1, st.flags.z, "z {a} {b}");
            assert_eq!(pool.eval(out.state.flags.c, &env) == 1, st.flags.c, "c {a} {b}");
            assert_eq!(pool.eval(out.state.flags.v, &env) == 1, st.flags.v, "v {a} {b}");
            assert_eq!(pool.eval(out.state.reg(ArmReg::R2), &env) as u32, st.reg(ArmReg::R2));
        }
    }

    #[test]
    fn cmp_then_branch_produces_condition() {
        let (pool, out) = exec(&[
            I::cmp(ArmReg::R2, Operand2::Reg(ArmReg::R3)),
            I::B { offset: 3, cond: Cond::Ne },
        ]);
        let cond = out.branch_cond.expect("branch condition");
        for (a, b) in [(1u32, 1u32), (1, 2)] {
            let mut env = HashMap::new();
            env.insert(2u32, a as u64);
            env.insert(3u32, b as u64);
            assert_eq!(pool.eval(cond, &env) == 1, a != b);
        }
    }

    #[test]
    fn load_store_roundtrip_and_log() {
        let (pool, out) = exec(&[
            I::str(ArmReg::R1, AddrMode::Imm(ArmReg::R6, 0)),
            I::ldr(ArmReg::R2, AddrMode::Imm(ArmReg::R6, 0)),
        ]);
        assert_eq!(out.stores.len(), 1);
        let mut pool = pool;
        let r1 = pool.var("r1", 32); // interned: same id as the initial r1
        assert_eq!(out.state.reg(ArmReg::R2), r1);
    }

    #[test]
    fn aliasing_load_is_hazard() {
        let mut pool = TermPool::new();
        let init = SymArmState::fresh(&mut pool, "");
        let mut oracle = MemOracle::new();
        let seq = [
            I::str(ArmReg::R1, AddrMode::Imm(ArmReg::R6, 0)),
            I::ldr(ArmReg::R2, AddrMode::Imm(ArmReg::R7, 0)),
        ];
        let r = exec_arm_seq(&mut pool, &seq, init, &mut oracle, &mut concrete_imms);
        assert_eq!(r.unwrap_err(), SymHazard::MayAlias);
    }

    #[test]
    fn unsupported_instructions_are_hazards() {
        let mut pool = TermPool::new();
        let mut oracle = MemOracle::new();
        for (seq, what) in [
            (vec![I::Bl { offset: 0, cond: Cond::Al }], "call"),
            (vec![I::Bx { rm: ArmReg::Lr, cond: Cond::Al }], "indirect branch"),
            (vec![I::Svc { imm: 0, cond: Cond::Al }], "svc"),
        ] {
            let init = SymArmState::fresh(&mut pool, "");
            let r = exec_arm_seq(&mut pool, &seq, init, &mut oracle, &mut concrete_imms);
            assert_eq!(r.unwrap_err(), SymHazard::Unsupported(what));
        }
        // Predicated non-branch.
        let init = SymArmState::fresh(&mut pool, "");
        let seq = [I::Dp {
            op: DpOp::Mov,
            rd: ArmReg::R0,
            rn: ArmReg::R0,
            op2: Operand2::Imm(1),
            set_flags: false,
            cond: Cond::Eq,
        }];
        let r = exec_arm_seq(&mut pool, &seq, init, &mut oracle, &mut concrete_imms);
        assert_eq!(r.unwrap_err(), SymHazard::Unsupported("predicated instruction"));
    }

    #[test]
    fn mid_block_branch_is_hazard() {
        let mut pool = TermPool::new();
        let init = SymArmState::fresh(&mut pool, "");
        let mut oracle = MemOracle::new();
        let seq = [I::B { offset: 1, cond: Cond::Al }, I::mov(ArmReg::R0, Operand2::Imm(1))];
        let r = exec_arm_seq(&mut pool, &seq, init, &mut oracle, &mut concrete_imms);
        assert_eq!(r.unwrap_err(), SymHazard::MidBlockBranch);
    }

    #[test]
    fn byte_store_truncates() {
        let (pool, out) = exec(&[I::Str {
            rt: ArmReg::R1,
            addr: AddrMode::Imm(ArmReg::R6, 4),
            width: Width::W8,
            cond: Cond::Al,
        }]);
        assert_eq!(out.stores.len(), 1);
        assert_eq!(pool.width(out.stores[0].value), 8);
        assert_eq!(out.stores[0].width, Width::W8);
    }
}
