#![forbid(unsafe_code)]
//! Binary symbolic execution for the guest and host ISAs.
//!
//! This is the workspace's FuzzBALL stand-in: it executes an ARM or x86
//! instruction sequence over *symbolic* machine states, producing
//! bit-vector terms (from [`ldbt_smt`]) for every defined register, every
//! memory store (keyed by the symbolic address expression recorded at
//! access time, exactly as paper §3.3 describes), and the final branch
//! condition.
//!
//! The rule verifier drives both executors from a shared [`ldbt_smt::TermPool`] and
//! a shared [`MemOracle`]: operands that the initial mapping pairs up are
//! given the *same* symbolic variable, so semantically mirrored
//! computations converge to syntactically identical terms, and anything
//! that remains is decided by the SAT-based equivalence check.
//!
//! Immediate operands can be *parameterized*: the driver supplies an
//! [`ImmBinder`] that replaces selected concrete immediates with symbolic
//! parameters (possibly wrapped in the mapped arithmetic/logical
//! operation, e.g. the additive-inverse mapping of Figure 1).
//!
//! The executors mirror the concrete semantics in `ldbt_arm::semantics` /
//! `ldbt_x86::semantics`; the property tests in `tests/` cross-check the
//! two against each other on random instruction sequences and inputs.

pub mod arm;
pub mod common;
pub mod x86;

pub use arm::{exec_arm_seq, exec_arm_seq_fuel, ArmSymOutcome, SymArmState};
pub use common::{ImmBinder, ImmRole, MemOracle, SymFlags, SymHazard};
pub use x86::{exec_x86_seq, exec_x86_seq_fuel, SymX86State, X86SymOutcome};
