//! Shared pieces of the two symbolic executors.

use ldbt_isa::Width;
use ldbt_smt::{TermId, TermPool};
use std::collections::HashMap;
use std::fmt;

/// Why a symbolic execution gave up.
///
/// Hazards map to the paper's "Other" verification-failure column: the
/// snippet is simply not learned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SymHazard {
    /// A load may alias an earlier store whose address is not
    /// syntactically identical — the store-log model cannot decide it.
    MayAlias,
    /// A load/store overlaps an earlier access of a different width at
    /// the same address expression.
    MixedWidth,
    /// An instruction kind the executor does not model symbolically
    /// (calls, indirect branches, predicated execution, stack traffic).
    Unsupported(&'static str),
    /// A branch that is not the final instruction of the sequence.
    MidBlockBranch,
    /// The caller's step-fuel budget ran out before the sequence ended.
    OutOfFuel,
}

impl fmt::Display for SymHazard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymHazard::MayAlias => write!(f, "possible aliasing between store and load"),
            SymHazard::MixedWidth => write!(f, "mixed-width access to one location"),
            SymHazard::Unsupported(what) => write!(f, "unsupported instruction: {what}"),
            SymHazard::MidBlockBranch => write!(f, "branch before end of sequence"),
            SymHazard::OutOfFuel => write!(f, "symbolic step fuel exhausted"),
        }
    }
}

impl std::error::Error for SymHazard {}

/// Which syntactic slot an immediate occupies (for parameterization).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImmRole {
    /// A data-processing / ALU immediate (`#imm`, `$imm`).
    Data,
    /// A memory-operand displacement.
    MemOffset,
}

/// A callback that turns a concrete immediate into a term.
///
/// The default behaviour is a constant; the rule verifier instead returns
/// parameter variables (possibly wrapped in the mapped operation).
/// Arguments: pool, instruction index within the sequence, role, value.
pub type ImmBinder<'a> = dyn FnMut(&mut TermPool, usize, ImmRole, i64) -> TermId + 'a;

/// An [`ImmBinder`] that materializes every immediate as a constant.
pub fn concrete_imms(pool: &mut TermPool, _idx: usize, _role: ImmRole, value: i64) -> TermId {
    pool.constant(value as u64, 32)
}

/// The symbolic condition flags (each a width-1 term).
///
/// The field names follow ARM (`n`/`z`/`c`/`v`); the x86 executor maps
/// `sf`→`n`, `zf`→`z`, `cf`→`c`, `of`→`v` positionally. Note the two
/// ISAs' *semantics* for the carry bit differ (borrow polarity); the
/// executors encode each ISA's own definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymFlags {
    /// Negative / sign flag.
    pub n: TermId,
    /// Zero flag.
    pub z: TermId,
    /// Carry flag (ISA-specific polarity).
    pub c: TermId,
    /// Overflow flag.
    pub v: TermId,
}

impl SymFlags {
    /// Fresh flag variables with a name prefix (`"g"` → `gN`, `gZ`, …).
    pub fn fresh(pool: &mut TermPool, prefix: &str) -> SymFlags {
        SymFlags {
            n: pool.var(&format!("{prefix}N"), 1),
            z: pool.var(&format!("{prefix}Z"), 1),
            c: pool.var(&format!("{prefix}C"), 1),
            v: pool.var(&format!("{prefix}V"), 1),
        }
    }
}

/// The shared symbolic memory.
///
/// Loads from addresses with no matching store return a fresh variable
/// *keyed by the address expression and width*, shared between the guest
/// and host executions — so a guest load and a host load from mapped
/// (hence syntactically identical) addresses see the same unknown value.
/// Each side keeps its own store log; the verifier compares the logs.
#[derive(Debug, Clone, Default)]
pub struct MemOracle {
    reads: HashMap<(TermId, Width), TermId>,
    counter: u32,
}

impl MemOracle {
    /// An empty oracle.
    pub fn new() -> Self {
        MemOracle::default()
    }

    /// The unknown initial value at `(addr, width)`.
    pub fn initial_value(&mut self, pool: &mut TermPool, addr: TermId, width: Width) -> TermId {
        if let Some(v) = self.reads.get(&(addr, width)) {
            return *v;
        }
        let name = format!("mem{}_{}", self.counter, width.bits());
        self.counter += 1;
        let v = pool.var(&name, width.bits());
        self.reads.insert((addr, width), v);
        v
    }
}

/// One entry of a store log: `(address expression, value, width)`.
///
/// The address is recorded at the moment of the access (paper §3.3:
/// "record the symbolic expressions corresponding to the memory access
/// addresses when they are used"), so later modification of the registers
/// used in the address cannot corrupt the comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreEntry {
    /// Symbolic byte address.
    pub addr: TermId,
    /// Stored value (already truncated to `width` bits).
    pub value: TermId,
    /// Access width.
    pub width: Width,
}

/// A per-side store log with sound load forwarding.
#[derive(Debug, Clone, Default)]
pub struct StoreLog {
    entries: Vec<StoreEntry>,
}

impl StoreLog {
    /// An empty log.
    pub fn new() -> Self {
        StoreLog::default()
    }

    /// Record a store.
    pub fn push(&mut self, entry: StoreEntry) {
        self.entries.push(entry);
    }

    /// The recorded stores, oldest first.
    pub fn entries(&self) -> &[StoreEntry] {
        &self.entries
    }

    /// Resolve a load: forwarded store value, initial-memory value, or a
    /// hazard if aliasing cannot be ruled out syntactically.
    pub fn load(
        &self,
        pool: &mut TermPool,
        oracle: &mut MemOracle,
        addr: TermId,
        width: Width,
    ) -> Result<TermId, SymHazard> {
        if let Some(e) = self.entries.last() {
            if e.addr == addr {
                if e.width == width {
                    return Ok(e.value);
                }
                return Err(SymHazard::MixedWidth);
            }
            // A store to a syntactically different address may still
            // alias; only constant-vs-constant disjointness is decidable
            // here, and we keep the model simple and conservative.
            return Err(SymHazard::MayAlias);
        }
        Ok(oracle.initial_value(pool, addr, width))
    }
}

/// 33-bit addition helper: returns `(result32, carry_out, overflow)` for
/// `a + b + carry_in`. Both executors build their flag semantics on it.
pub fn add_with_carry(
    pool: &mut TermPool,
    a: TermId,
    b: TermId,
    carry_in: TermId,
) -> (TermId, TermId, TermId) {
    // The 32-bit value uses plain 32-bit additions so that guest and host
    // value expressions converge syntactically; only the carry flag needs
    // the 33-bit computation.
    let c32 = pool.zext(carry_in, 32);
    let ab = pool.add(a, b);
    let result = pool.add(ab, c32);
    let wa = pool.zext(a, 33);
    let wb = pool.zext(b, 33);
    let wc = pool.zext(carry_in, 33);
    let s1 = pool.add(wa, wb);
    let wide = pool.add(s1, wc);
    let carry = pool.extract(wide, 32, 32);
    // Signed overflow: operands share a sign that differs from the result.
    let sa = pool.extract(a, 31, 31);
    let sb = pool.extract(b, 31, 31);
    let sr = pool.extract(result, 31, 31);
    let xa = pool.xor_(sa, sr);
    let xb = pool.xor_(sb, sr);
    let v = pool.and_(xa, xb);
    (result, carry, v)
}

/// `n`/`z` of a 32-bit result.
pub fn nz_of(pool: &mut TermPool, result: TermId) -> (TermId, TermId) {
    let n = pool.extract(result, 31, 31);
    let zero = pool.constant(0, 32);
    let z = pool.eq(result, zero);
    (n, z)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_shares_reads_by_address_and_width() {
        let mut pool = TermPool::new();
        let mut o = MemOracle::new();
        let a1 = pool.var("a", 32);
        let v1 = o.initial_value(&mut pool, a1, Width::W32);
        let v2 = o.initial_value(&mut pool, a1, Width::W32);
        assert_eq!(v1, v2);
        let v3 = o.initial_value(&mut pool, a1, Width::W8);
        assert_ne!(v1, v3);
        assert_eq!(pool.width(v3), 8);
        let a2 = pool.var("b", 32);
        let v4 = o.initial_value(&mut pool, a2, Width::W32);
        assert_ne!(v1, v4);
    }

    #[test]
    fn store_log_forwards_exact_match() {
        let mut pool = TermPool::new();
        let mut o = MemOracle::new();
        let mut log = StoreLog::new();
        let addr = pool.var("p", 32);
        let val = pool.var("v", 32);
        log.push(StoreEntry { addr, value: val, width: Width::W32 });
        assert_eq!(log.load(&mut pool, &mut o, addr, Width::W32), Ok(val));
    }

    #[test]
    fn store_log_rejects_possible_alias() {
        let mut pool = TermPool::new();
        let mut o = MemOracle::new();
        let mut log = StoreLog::new();
        let p = pool.var("p", 32);
        let q = pool.var("q", 32);
        let val = pool.var("v", 32);
        log.push(StoreEntry { addr: p, value: val, width: Width::W32 });
        assert_eq!(log.load(&mut pool, &mut o, q, Width::W32), Err(SymHazard::MayAlias));
    }

    #[test]
    fn store_log_rejects_mixed_width() {
        let mut pool = TermPool::new();
        let mut o = MemOracle::new();
        let mut log = StoreLog::new();
        let p = pool.var("p", 32);
        let val = pool.var("v", 32);
        log.push(StoreEntry { addr: p, value: val, width: Width::W32 });
        assert_eq!(log.load(&mut pool, &mut o, p, Width::W8), Err(SymHazard::MixedWidth));
    }

    #[test]
    fn add_with_carry_matches_concrete() {
        let mut pool = TermPool::new();
        for (a, b, cin) in [
            (5u32, 7u32, false),
            (u32::MAX, 1, false),
            (u32::MAX, 0, true),
            (0x7fff_ffff, 1, false),
            (0x8000_0000, 0x8000_0000, false),
        ] {
            let ta = pool.constant(a as u64, 32);
            let tb = pool.constant(b as u64, 32);
            let tc = pool.constant(cin as u64, 1);
            let (r, c, v) = add_with_carry(&mut pool, ta, tb, tc);
            let env = HashMap::new();
            assert_eq!(pool.eval(r, &env) as u32, a.wrapping_add(b).wrapping_add(cin as u32));
            assert_eq!(pool.eval(c, &env) == 1, ldbt_isa::bits::add_carry32(a, b, cin));
            assert_eq!(pool.eval(v, &env) == 1, ldbt_isa::bits::add_overflow32(a, b, cin));
        }
    }

    #[test]
    fn nz_of_flags() {
        let mut pool = TermPool::new();
        let t = pool.constant(0, 32);
        let (n, z) = nz_of(&mut pool, t);
        let env = HashMap::new();
        assert_eq!(pool.eval(n, &env), 0);
        assert_eq!(pool.eval(z, &env), 1);
        let t = pool.constant(0x8000_0000, 32);
        let (n, z) = nz_of(&mut pool, t);
        assert_eq!(pool.eval(n, &env), 1);
        assert_eq!(pool.eval(z, &env), 0);
    }

    #[test]
    fn hazard_display() {
        assert!(SymHazard::MayAlias.to_string().contains("alias"));
        assert!(SymHazard::Unsupported("call").to_string().contains("call"));
    }
}
