//! Symbolic execution of x86 instruction sequences.

use crate::common::{
    add_with_carry, nz_of, ImmBinder, ImmRole, MemOracle, StoreEntry, StoreLog, SymFlags, SymHazard,
};
use ldbt_isa::Width;
use ldbt_smt::{TermId, TermPool};
use ldbt_x86::{AluOp, Cc, Gpr, Operand, ShiftOp, UnOp, X86Instr, X86Mem};

/// A symbolic x86 register/flag state.
///
/// Flags reuse [`SymFlags`] positionally: `n`=SF, `z`=ZF, `c`=CF, `v`=OF.
#[derive(Debug, Clone)]
pub struct SymX86State {
    /// One term per register, in encoding order.
    pub regs: [TermId; 8],
    /// Symbolic flags.
    pub flags: SymFlags,
}

impl SymX86State {
    /// A state with fresh variables (`{prefix}eax`, …).
    pub fn fresh(pool: &mut TermPool, prefix: &str) -> SymX86State {
        let names = ["eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"];
        let regs = std::array::from_fn(|i| pool.var(&format!("{prefix}{}", names[i]), 32));
        SymX86State { regs, flags: SymFlags::fresh(pool, &format!("{prefix}f")) }
    }

    /// Read a register term.
    pub fn reg(&self, r: Gpr) -> TermId {
        self.regs[r.index()]
    }

    /// Write a register term.
    pub fn set_reg(&mut self, r: Gpr, t: TermId) {
        self.regs[r.index()] = t;
    }
}

/// What a symbolic x86 execution produced.
#[derive(Debug, Clone)]
pub struct X86SymOutcome {
    /// Final register/flag state.
    pub state: SymX86State,
    /// Registers written, in first-write order.
    pub defined_regs: Vec<Gpr>,
    /// Flag-written mask in x86 layout (CF=1, ZF=2, SF=4, OF=8).
    pub flags_defined: u8,
    /// The store log.
    pub stores: Vec<StoreEntry>,
    /// Branch-taken condition for a final `jcc`.
    pub branch_cond: Option<TermId>,
}

fn mem_term(
    pool: &mut TermPool,
    state: &SymX86State,
    m: &X86Mem,
    binder: &mut ImmBinder,
    idx: usize,
) -> TermId {
    let mut t = binder(pool, idx, ImmRole::MemOffset, m.disp as i64);
    if let Some(b) = m.base {
        t = pool.add(t, state.reg(b));
    }
    if let Some((i, s)) = m.index {
        let sc = pool.constant(s as u64, 32);
        let scaled = pool.mul(state.reg(i), sc);
        t = pool.add(t, scaled);
    }
    t
}

fn cc_term(pool: &mut TermPool, f: &SymFlags, cc: Cc) -> TermId {
    // x86 mapping: f.c = CF, f.z = ZF, f.n = SF, f.v = OF.
    match cc {
        Cc::O => f.v,
        Cc::No => pool.not_(f.v),
        Cc::B => f.c,
        Cc::Ae => pool.not_(f.c),
        Cc::E => f.z,
        Cc::Ne => pool.not_(f.z),
        Cc::Be => pool.or_(f.c, f.z),
        Cc::A => {
            let nc = pool.not_(f.c);
            let nz = pool.not_(f.z);
            pool.and_(nc, nz)
        }
        Cc::S => f.n,
        Cc::Ns => pool.not_(f.n),
        Cc::L => pool.xor_(f.n, f.v),
        Cc::Ge => {
            let x = pool.xor_(f.n, f.v);
            pool.not_(x)
        }
        Cc::Le => {
            let lt = pool.xor_(f.n, f.v);
            pool.or_(f.z, lt)
        }
        Cc::G => {
            let x = pool.xor_(f.n, f.v);
            let ge = pool.not_(x);
            let nz = pool.not_(f.z);
            pool.and_(ge, nz)
        }
    }
}

/// Symbolically execute an x86 sequence.
///
/// Mirrors `ldbt_x86::semantics` exactly, including CF's borrow polarity,
/// the `inc`/`dec` CF preservation, and logical ops clearing CF/OF. A
/// final `jcc` produces `branch_cond`; stack traffic and other control
/// flow are hazards (the learner filters such snippets anyway).
pub fn exec_x86_seq(
    pool: &mut TermPool,
    seq: &[X86Instr],
    init: SymX86State,
    oracle: &mut MemOracle,
    binder: &mut ImmBinder,
) -> Result<X86SymOutcome, SymHazard> {
    exec_x86_seq_fuel(pool, seq, init, oracle, binder, usize::MAX)
}

/// [`exec_x86_seq`] with an explicit step-fuel budget: executing more
/// than `fuel` instructions yields [`SymHazard::OutOfFuel`] instead of
/// running unboundedly on adversarial or degenerate snippets.
pub fn exec_x86_seq_fuel(
    pool: &mut TermPool,
    seq: &[X86Instr],
    init: SymX86State,
    oracle: &mut MemOracle,
    binder: &mut ImmBinder,
    fuel: usize,
) -> Result<X86SymOutcome, SymHazard> {
    let mut state = init;
    let mut defined: Vec<Gpr> = Vec::new();
    let mut flags_defined = 0u8;
    let mut log = StoreLog::new();
    let mut branch_cond = None;

    fn define(defined: &mut Vec<Gpr>, r: Gpr) {
        if !defined.contains(&r) {
            defined.push(r);
        }
    }

    // Read an operand as a 32-bit term. Threads the whole execution
    // context (pool, state, memory model, binder) — a context struct
    // would only bundle the same borrows.
    #[allow(clippy::too_many_arguments)]
    fn read_op(
        pool: &mut TermPool,
        state: &SymX86State,
        log: &StoreLog,
        oracle: &mut MemOracle,
        op: &Operand,
        binder: &mut ImmBinder,
        idx: usize,
        role: ImmRole,
    ) -> Result<TermId, SymHazard> {
        match op {
            Operand::Reg(r) => Ok(state.reg(*r)),
            Operand::Imm(v) => Ok(binder(pool, idx, role, *v as i64)),
            Operand::Mem(m) => {
                let a = mem_term(pool, state, m, binder, idx);
                log.load(pool, oracle, a, Width::W32)
            }
        }
    }

    for (idx, instr) in seq.iter().enumerate() {
        if idx >= fuel {
            return Err(SymHazard::OutOfFuel);
        }
        if branch_cond.is_some() {
            return Err(SymHazard::MidBlockBranch);
        }
        match *instr {
            X86Instr::Mov { dst, src } => {
                let v = read_op(pool, &state, &log, oracle, &src, binder, idx, ImmRole::Data)?;
                match dst {
                    Operand::Reg(r) => {
                        state.set_reg(r, v);
                        define(&mut defined, r);
                    }
                    Operand::Mem(m) => {
                        let a = mem_term(pool, &state, &m, binder, idx);
                        log.push(StoreEntry { addr: a, value: v, width: Width::W32 });
                    }
                    Operand::Imm(_) => return Err(SymHazard::Unsupported("mov to imm")),
                }
            }
            X86Instr::Alu { op, dst, src } => {
                let a = read_op(pool, &state, &log, oracle, &dst, binder, idx, ImmRole::Data)?;
                let b = read_op(pool, &state, &log, oracle, &src, binder, idx, ImmRole::Data)?;
                let one = pool.tru();
                let zero = pool.fls();
                let (value, cf, of) = match op {
                    AluOp::Add => {
                        let (r, c, v) = add_with_carry(pool, a, b, zero);
                        (r, c, v)
                    }
                    AluOp::Adc => {
                        let (r, c, v) = add_with_carry(pool, a, b, state.flags.c);
                        (r, c, v)
                    }
                    AluOp::Sub | AluOp::Cmp => {
                        let nb = pool.not_(b);
                        let (r, c, v) = add_with_carry(pool, a, nb, one);
                        (r, pool.not_(c), v) // CF = borrow = !carry
                    }
                    AluOp::Sbb => {
                        let nb = pool.not_(b);
                        let ncf = pool.not_(state.flags.c);
                        let (r, c, v) = add_with_carry(pool, a, nb, ncf);
                        (r, pool.not_(c), v)
                    }
                    AluOp::And | AluOp::Test => (pool.and_(a, b), zero, zero),
                    AluOp::Or => (pool.or_(a, b), zero, zero),
                    AluOp::Xor => (pool.xor_(a, b), zero, zero),
                };
                let (n, z) = nz_of(pool, value);
                state.flags = SymFlags { n, z, c: cf, v: of };
                flags_defined |= 0b1111;
                if !op.is_compare() {
                    match dst {
                        Operand::Reg(r) => {
                            state.set_reg(r, value);
                            define(&mut defined, r);
                        }
                        Operand::Mem(m) => {
                            let a = mem_term(pool, &state, &m, binder, idx);
                            log.push(StoreEntry { addr: a, value, width: Width::W32 });
                        }
                        Operand::Imm(_) => return Err(SymHazard::Unsupported("alu to imm")),
                    }
                }
            }
            X86Instr::Lea { dst, addr } => {
                let a = mem_term(pool, &state, &addr, binder, idx);
                state.set_reg(dst, a);
                define(&mut defined, dst);
            }
            X86Instr::Imul { dst, src } => {
                let a = state.reg(dst);
                let b = read_op(pool, &state, &log, oracle, &src, binder, idx, ImmRole::Data)?;
                let value = pool.mul(a, b);
                // CF=OF = full product does not fit: sext64(lo) != product.
                let wa = pool.sext(a, 64);
                let wb = pool.sext(b, 64);
                let full = pool.mul(wa, wb);
                let lo = pool.sext(value, 64);
                let fits = pool.eq(full, lo);
                let ovf = pool.not_(fits);
                state.flags.c = ovf;
                state.flags.v = ovf;
                flags_defined |= 0b1001;
                state.set_reg(dst, value);
                define(&mut defined, dst);
            }
            X86Instr::Shift { op, dst, count } => {
                let a = read_op(pool, &state, &log, oracle, &dst, binder, idx, ImmRole::Data)?;
                let count = count as u32 & 31;
                if count == 0 {
                    continue;
                }
                let amt = pool.constant(count as u64, 32);
                let (value, cf) = match op {
                    ShiftOp::Shl => {
                        let r = pool.shl(a, amt);
                        (r, pool.extract(a, 32 - count, 32 - count))
                    }
                    ShiftOp::Shr => {
                        let r = pool.lshr(a, amt);
                        (r, pool.extract(a, count - 1, count - 1))
                    }
                    ShiftOp::Sar => {
                        let r = pool.ashr(a, amt);
                        (r, pool.extract(a, count - 1, count - 1))
                    }
                };
                let (n, z) = nz_of(pool, value);
                state.flags = SymFlags { n, z, c: cf, v: pool.fls() };
                flags_defined |= 0b1111;
                match dst {
                    Operand::Reg(r) => {
                        state.set_reg(r, value);
                        define(&mut defined, r);
                    }
                    Operand::Mem(m) => {
                        let a = mem_term(pool, &state, &m, binder, idx);
                        log.push(StoreEntry { addr: a, value, width: Width::W32 });
                    }
                    Operand::Imm(_) => return Err(SymHazard::Unsupported("shift imm dst")),
                }
            }
            X86Instr::Un { op, dst } => {
                let a = read_op(pool, &state, &log, oracle, &dst, binder, idx, ImmRole::Data)?;
                let one32 = pool.constant(1, 32);
                let zero32 = pool.constant(0, 32);
                let value = match op {
                    UnOp::Neg => pool.sub(zero32, a),
                    UnOp::Not => pool.not_(a),
                    UnOp::Inc => pool.add(a, one32),
                    UnOp::Dec => pool.sub(a, one32),
                };
                match op {
                    UnOp::Neg => {
                        let cf = pool.ne(a, zero32);
                        let min = pool.constant(0x8000_0000, 32);
                        let of = pool.eq(a, min);
                        let (n, z) = nz_of(pool, value);
                        state.flags = SymFlags { n, z, c: cf, v: of };
                        flags_defined |= 0b1111;
                    }
                    UnOp::Not => {}
                    UnOp::Inc => {
                        let max = pool.constant(0x7fff_ffff, 32);
                        let of = pool.eq(a, max);
                        let (n, z) = nz_of(pool, value);
                        state.flags = SymFlags { n, z, c: state.flags.c, v: of };
                        flags_defined |= 0b1110;
                    }
                    UnOp::Dec => {
                        let min = pool.constant(0x8000_0000, 32);
                        let of = pool.eq(a, min);
                        let (n, z) = nz_of(pool, value);
                        state.flags = SymFlags { n, z, c: state.flags.c, v: of };
                        flags_defined |= 0b1110;
                    }
                }
                match dst {
                    Operand::Reg(r) => {
                        state.set_reg(r, value);
                        define(&mut defined, r);
                    }
                    Operand::Mem(m) => {
                        let a = mem_term(pool, &state, &m, binder, idx);
                        log.push(StoreEntry { addr: a, value, width: Width::W32 });
                    }
                    Operand::Imm(_) => return Err(SymHazard::Unsupported("unary imm dst")),
                }
            }
            X86Instr::Movx { sign, width, dst, src } => {
                let narrow = match src {
                    Operand::Reg(r) => {
                        let full = state.reg(r);
                        pool.extract(full, width.bits() - 1, 0)
                    }
                    Operand::Mem(m) => {
                        let a = mem_term(pool, &state, &m, binder, idx);
                        log.load(pool, oracle, a, width)?
                    }
                    Operand::Imm(_) => return Err(SymHazard::Unsupported("movx imm")),
                };
                let v = if sign { pool.sext(narrow, 32) } else { pool.zext(narrow, 32) };
                state.set_reg(dst, v);
                define(&mut defined, dst);
            }
            X86Instr::MovStore { width, src, dst } => {
                let a = mem_term(pool, &state, &dst, binder, idx);
                let full = state.reg(src);
                let value = pool.extract(full, width.bits() - 1, 0);
                log.push(StoreEntry { addr: a, value, width });
            }
            X86Instr::Setcc { cc, dst } => {
                let bit = cc_term(pool, &state.flags, cc);
                let wide = pool.zext(bit, 32);
                let old = state.reg(dst);
                let himask = pool.constant(0xffff_ff00, 32);
                let hi = pool.and_(old, himask);
                let v = pool.or_(hi, wide);
                state.set_reg(dst, v);
                define(&mut defined, dst);
            }
            X86Instr::Jcc { cc, .. } => {
                if idx + 1 != seq.len() {
                    return Err(SymHazard::MidBlockBranch);
                }
                branch_cond = Some(cc_term(pool, &state.flags, cc));
            }
            X86Instr::Jmp { .. } => {
                if idx + 1 != seq.len() {
                    return Err(SymHazard::MidBlockBranch);
                }
                branch_cond = Some(pool.tru());
            }
            X86Instr::JmpInd { .. } => return Err(SymHazard::Unsupported("indirect jump")),
            X86Instr::Call { .. } => return Err(SymHazard::Unsupported("call")),
            X86Instr::Ret => return Err(SymHazard::Unsupported("ret")),
            X86Instr::Push { .. } | X86Instr::Pop { .. } => {
                return Err(SymHazard::Unsupported("stack traffic"))
            }
            X86Instr::Pushfd | X86Instr::Popfd => {
                return Err(SymHazard::Unsupported("flag save/restore"))
            }
            X86Instr::Halt => return Err(SymHazard::Unsupported("hlt")),
            X86Instr::ChainJmp { .. } => return Err(SymHazard::Unsupported("chain jump")),
            X86Instr::Trap => return Err(SymHazard::Unsupported("trap")),
        }
    }
    Ok(X86SymOutcome {
        state,
        defined_regs: defined,
        flags_defined,
        stores: log.entries().to_vec(),
        branch_cond,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::concrete_imms;
    use ldbt_x86::X86Instr as I;
    use std::collections::HashMap;

    fn exec(seq: &[I]) -> (TermPool, X86SymOutcome) {
        let mut pool = TermPool::new();
        let init = SymX86State::fresh(&mut pool, "");
        let mut oracle = MemOracle::new();
        let out = exec_x86_seq(&mut pool, seq, init, &mut oracle, &mut concrete_imms).unwrap();
        (pool, out)
    }

    #[test]
    fn lea_matches_arm_add_sub_chain() {
        // leal -5(%edx,%ecx,1), %edx ≡ edx + ecx - 5.
        let (mut pool, out) = exec(&[I::Lea {
            dst: Gpr::Edx,
            addr: X86Mem { base: Some(Gpr::Edx), index: Some((Gpr::Ecx, 1)), disp: -5 },
        }]);
        let edx = pool.var("edx", 32);
        let ecx = pool.var("ecx", 32);
        let s = pool.add(edx, ecx);
        let m5 = pool.constant((-5i64) as u64, 32);
        let want = pool.add(s, m5);
        assert_eq!(out.state.reg(Gpr::Edx), want);
        assert_eq!(out.defined_regs, vec![Gpr::Edx]);
        assert_eq!(out.flags_defined, 0, "lea writes no flags");
    }

    #[test]
    fn alu_flags_match_concrete_interpreter() {
        use ldbt_x86::{EFlags, X86State};
        let cases = [
            I::alu_rr(AluOp::Add, Gpr::Eax, Gpr::Ecx),
            I::alu_rr(AluOp::Sub, Gpr::Eax, Gpr::Ecx),
            I::alu_rr(AluOp::And, Gpr::Eax, Gpr::Ecx),
            I::alu_rr(AluOp::Xor, Gpr::Eax, Gpr::Ecx),
            I::alu_rr(AluOp::Cmp, Gpr::Eax, Gpr::Ecx),
            I::Un { op: UnOp::Inc, dst: Operand::Reg(Gpr::Eax) },
            I::Un { op: UnOp::Dec, dst: Operand::Reg(Gpr::Eax) },
            I::Un { op: UnOp::Neg, dst: Operand::Reg(Gpr::Eax) },
            I::Shift { op: ShiftOp::Shl, dst: Operand::Reg(Gpr::Eax), count: 3 },
            I::Shift { op: ShiftOp::Sar, dst: Operand::Reg(Gpr::Eax), count: 1 },
        ];
        for instr in cases {
            let (pool, out) = exec(&[instr]);
            for (a, b) in [(5u32, 3u32), (3, 5), (0, 0), (0x8000_0000, 1), (u32::MAX, 1)] {
                let mut env = HashMap::new();
                env.insert(0u32, a as u64); // eax
                env.insert(1u32, b as u64); // ecx
                let mut st = X86State::new();
                st.set_reg(Gpr::Eax, a);
                st.set_reg(Gpr::Ecx, b);
                st.flags = EFlags::new();
                // Symbolic initial flags default to 0 in eval (unassigned).
                st.exec(&instr);
                assert_eq!(
                    pool.eval(out.state.reg(Gpr::Eax), &env) as u32,
                    st.reg(Gpr::Eax),
                    "{instr} value a={a} b={b}"
                );
                assert_eq!(
                    pool.eval(out.state.flags.c, &env) == 1,
                    st.flags.cf,
                    "{instr} cf a={a} b={b}"
                );
                assert_eq!(pool.eval(out.state.flags.z, &env) == 1, st.flags.zf, "{instr} zf");
                assert_eq!(pool.eval(out.state.flags.n, &env) == 1, st.flags.sf, "{instr} sf");
                assert_eq!(pool.eval(out.state.flags.v, &env) == 1, st.flags.of, "{instr} of");
            }
        }
    }

    #[test]
    fn cmp_jcc_condition() {
        let (pool, out) =
            exec(&[I::alu_rr(AluOp::Cmp, Gpr::Eax, Gpr::Ecx), I::Jcc { cc: Cc::Le, target: 2 }]);
        let cond = out.branch_cond.unwrap();
        for (a, b) in [(1i32, 2i32), (2, 1), (2, 2), (-1, 1)] {
            let mut env = HashMap::new();
            env.insert(0u32, a as u32 as u64);
            env.insert(1u32, b as u32 as u64);
            assert_eq!(pool.eval(cond, &env) == 1, a <= b, "{a} <= {b}");
        }
    }

    #[test]
    fn movzbl_structure() {
        let (mut pool, out) = exec(&[I::Movx {
            sign: false,
            width: Width::W8,
            dst: Gpr::Eax,
            src: Operand::Reg(Gpr::Eax),
        }]);
        let eax = pool.var("eax", 32);
        let lo = pool.extract(eax, 7, 0);
        let want = pool.zext(lo, 32);
        assert_eq!(out.state.reg(Gpr::Eax), want);
    }

    #[test]
    fn store_log_records_address_at_use() {
        // movl %eax, (%esi); addl $4, %esi — the store address must be the
        // *original* esi.
        let (mut pool, out) = exec(&[
            I::Mov { dst: Operand::Mem(X86Mem::base(Gpr::Esi)), src: Operand::Reg(Gpr::Eax) },
            I::alu_ri(AluOp::Add, Gpr::Esi, 4),
        ]);
        assert_eq!(out.stores.len(), 1);
        let esi = pool.var("esi", 32);
        assert_eq!(out.stores[0].addr, esi);
        // And the final esi differs from the store address.
        assert_ne!(out.state.reg(Gpr::Esi), esi);
    }

    #[test]
    fn memory_operand_in_alu_reads_shared_oracle() {
        let mut pool = TermPool::new();
        let mut oracle = MemOracle::new();
        let init = SymX86State::fresh(&mut pool, "");
        let esi = init.reg(Gpr::Esi);
        let seq = [I::Alu {
            op: AluOp::Add,
            dst: Operand::Reg(Gpr::Eax),
            src: Operand::Mem(X86Mem::base(Gpr::Esi)),
        }];
        let out = exec_x86_seq(&mut pool, &seq, init, &mut oracle, &mut concrete_imms).unwrap();
        // A second read from the same address gives the same variable.
        let v = oracle.initial_value(&mut pool, esi, Width::W32);
        let eax = pool.var("eax", 32);
        let want = pool.add(eax, v);
        assert_eq!(out.state.reg(Gpr::Eax), want);
    }

    #[test]
    fn unsupported_are_hazards() {
        let mut pool = TermPool::new();
        let mut oracle = MemOracle::new();
        for (i, what) in [
            (I::Ret, "ret"),
            (I::Call { target: 0 }, "call"),
            (I::Push { src: Operand::Reg(Gpr::Eax) }, "stack traffic"),
            (I::Pushfd, "flag save/restore"),
            (I::Halt, "hlt"),
            (I::JmpInd { src: Operand::Reg(Gpr::Eax) }, "indirect jump"),
        ] {
            let init = SymX86State::fresh(&mut pool, "");
            let r = exec_x86_seq(&mut pool, &[i], init, &mut oracle, &mut concrete_imms);
            assert_eq!(r.unwrap_err(), SymHazard::Unsupported(what));
        }
    }

    #[test]
    fn setcc_merges_low_byte() {
        let (pool, out) = exec(&[
            I::alu_rr(AluOp::Cmp, Gpr::Eax, Gpr::Eax), // ZF=1
            I::Setcc { cc: Cc::E, dst: Gpr::Ecx },
        ]);
        let mut env = HashMap::new();
        env.insert(1u32, 0xdead_be00u64); // ecx
        assert_eq!(pool.eval(out.state.reg(Gpr::Ecx), &env), 0xdead_be01);
    }

    #[test]
    fn imul_overflow_flag_symbolic() {
        let (pool, out) = exec(&[I::Imul { dst: Gpr::Eax, src: Operand::Reg(Gpr::Ecx) }]);
        for (a, b, ovf) in
            [(1000u32, 1000u32, false), (0x10000, 0x10000, true), ((-3i32) as u32, 7, false)]
        {
            let mut env = HashMap::new();
            env.insert(0u32, a as u64);
            env.insert(1u32, b as u64);
            assert_eq!(pool.eval(out.state.flags.c, &env) == 1, ovf, "{a}*{b}");
            assert_eq!(pool.eval(out.state.reg(Gpr::Eax), &env) as u32, a.wrapping_mul(b));
        }
    }
}
