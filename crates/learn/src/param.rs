//! Operand parameterization: building *initial mappings* (paper §3.2).
//!
//! An initial mapping pairs guest and host operands of the same type:
//!
//! * **memory operands** by the variable names the compilers preserved in
//!   their IR (both sides of a pair then share one displacement
//!   parameter),
//! * **live-in registers** through normalized memory addresses first
//!   (`base ± index×scale + offset`), then by the operations performed on
//!   them, and finally by bounded permutation search (at most
//!   [`MAX_MAPPING_TRIES`] candidate mappings, as in the paper),
//! * **immediate operands** by value, allowing an arithmetic/logical
//!   adaptor ([`ImmRel`]) between the guest and host values.

use crate::extract::SnippetPair;
use crate::rule::{ImmParam, ImmRel, ImmSlot};
use ldbt_arm::{ArmInstr, ArmReg, DpOp, Operand2};
use ldbt_isa::NormAddr;
use ldbt_x86::{AluOp, Gpr, Operand, X86Instr};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Maximum number of initial mappings tried per snippet (paper: "we
/// limit it to 5 tries").
pub const MAX_MAPPING_TRIES: usize = 5;

/// Why parameterization failed (Table 1's "#F in Parameterization").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamFail {
    /// Different numbers of memory variables ("Num").
    MemCount,
    /// Different memory variable names ("Name").
    MemName,
    /// No initial mapping for live-in registers could be generated
    /// ("FailG").
    LiveIns,
}

/// One candidate initial mapping.
#[derive(Debug, Clone, Default)]
pub struct InitialMapping {
    /// Paired (guest, host) registers.
    pub reg_pairs: Vec<(ArmReg, Gpr)>,
    /// Parameterized immediates (guest site + host sites with relations).
    pub imm_params: Vec<ImmParam>,
    /// Paired (guest instr index, host instr index) memory operands, in
    /// pairing order.
    pub mem_pairs: Vec<(usize, usize)>,
}

impl InitialMapping {
    /// The host register a guest register maps to, if any.
    pub fn host_of(&self, g: ArmReg) -> Option<Gpr> {
        self.reg_pairs.iter().find(|(gg, _)| *gg == g).map(|(_, h)| *h)
    }
}

/// Live-in registers of a guest sequence (used before defined), in first
/// use order.
pub fn guest_live_ins(seq: &[ArmInstr]) -> Vec<ArmReg> {
    let mut defined: HashSet<ArmReg> = HashSet::new();
    let mut live = Vec::new();
    for i in seq {
        for u in i.uses() {
            if !defined.contains(&u) && !live.contains(&u) {
                live.push(u);
            }
        }
        if let Some(d) = i.def() {
            defined.insert(d);
        }
    }
    live
}

/// Live-in registers of a host sequence.
pub fn host_live_ins(seq: &[X86Instr]) -> Vec<Gpr> {
    let mut defined: HashSet<Gpr> = HashSet::new();
    let mut live = Vec::new();
    for i in seq {
        for u in i.uses() {
            if !defined.contains(&u) && !live.contains(&u) {
                live.push(u);
            }
        }
        if let Some(d) = i.def() {
            defined.insert(d);
        }
    }
    live
}

/// Coarse operation classes used by the live-in mapping heuristic
/// (paper Figure 3: "mapped based on the operations performed on them").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum OpClass {
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
    Shift,
    Move,
    Compare,
    MemAddr,
    StoreVal,
    Other,
}

fn guest_first_use_class(seq: &[ArmInstr], reg: ArmReg) -> (OpClass, usize) {
    for i in seq {
        let uses = i.uses();
        if let Some(pos) = uses.iter().position(|u| *u == reg) {
            let class = match i {
                ArmInstr::Dp { op, .. } => match op {
                    DpOp::Add | DpOp::Adc | DpOp::Cmn => OpClass::Add,
                    DpOp::Sub | DpOp::Sbc | DpOp::Rsb => OpClass::Sub,
                    DpOp::And | DpOp::Bic | DpOp::Tst => OpClass::And,
                    DpOp::Orr => OpClass::Or,
                    DpOp::Eor | DpOp::Teq => OpClass::Xor,
                    DpOp::Mov | DpOp::Mvn => OpClass::Move,
                    DpOp::Cmp => OpClass::Compare,
                },
                ArmInstr::Mul { .. } => OpClass::Mul,
                ArmInstr::Ldr { .. } => OpClass::MemAddr,
                ArmInstr::Str { .. } => {
                    if pos == 0 {
                        OpClass::StoreVal
                    } else {
                        OpClass::MemAddr
                    }
                }
                _ => OpClass::Other,
            };
            return (class, pos);
        }
    }
    (OpClass::Other, 0)
}

fn host_first_use_class(seq: &[X86Instr], reg: Gpr) -> (OpClass, usize) {
    for i in seq {
        let uses = i.uses();
        if let Some(pos) = uses.iter().position(|u| *u == reg) {
            let in_addr =
                i.mem_operand().map(|(a, _, _)| a.regs().any(|r| *r == reg)).unwrap_or(false);
            let class = if in_addr {
                OpClass::MemAddr
            } else {
                match i {
                    X86Instr::Alu { op, .. } => match op {
                        AluOp::Add | AluOp::Adc => OpClass::Add,
                        AluOp::Sub | AluOp::Sbb => OpClass::Sub,
                        AluOp::And | AluOp::Test => OpClass::And,
                        AluOp::Or => OpClass::Or,
                        AluOp::Xor => OpClass::Xor,
                        AluOp::Cmp => OpClass::Compare,
                    },
                    // lea is address arithmetic: usually an add in guest
                    // terms.
                    X86Instr::Lea { .. } => OpClass::Add,
                    X86Instr::Imul { .. } => OpClass::Mul,
                    X86Instr::Shift { .. } => OpClass::Shift,
                    X86Instr::Mov { dst: Operand::Mem(_), .. } => OpClass::StoreVal,
                    X86Instr::MovStore { .. } => OpClass::StoreVal,
                    X86Instr::Mov { .. } | X86Instr::Movx { .. } => OpClass::Move,
                    X86Instr::Un { op, .. } => match op {
                        ldbt_x86::UnOp::Inc => OpClass::Add,
                        ldbt_x86::UnOp::Dec => OpClass::Sub,
                        ldbt_x86::UnOp::Neg => OpClass::Sub,
                        ldbt_x86::UnOp::Not => OpClass::Xor,
                    },
                    _ => OpClass::Other,
                }
            };
            return (class, pos);
        }
    }
    (OpClass::Other, 0)
}

/// A memory-operand site on one side.
#[derive(Debug, Clone)]
struct GuestMemSite {
    instr: usize,
    addr: NormAddr<ArmReg>,
    var: String,
    has_offset_slot: bool,
}

#[derive(Debug, Clone)]
struct HostMemSite {
    instr: usize,
    addr: NormAddr<Gpr>,
    var: String,
}

fn guest_mem_sites(pair: &SnippetPair) -> Vec<GuestMemSite> {
    pair.guest
        .iter()
        .enumerate()
        .filter_map(|(i, (g, var))| {
            let (addr, _, _) = g.mem_operand()?;
            Some(GuestMemSite {
                instr: i,
                addr,
                var: var.clone().unwrap_or_default(),
                has_offset_slot: matches!(
                    g,
                    ArmInstr::Ldr { addr: ldbt_arm::AddrMode::Imm(_, _), .. }
                        | ArmInstr::Str { addr: ldbt_arm::AddrMode::Imm(_, _), .. }
                ),
            })
        })
        .collect()
}

fn host_mem_sites(pair: &SnippetPair) -> Vec<HostMemSite> {
    pair.host
        .iter()
        .enumerate()
        .flat_map(|(i, (h, var))| {
            // Read-modify-write instructions contribute two accesses.
            h.mem_operands().into_iter().map(move |(addr, _, _)| HostMemSite {
                instr: i,
                addr,
                var: var.clone().unwrap_or_default(),
            })
        })
        .collect()
}

/// Guest data-immediate sites: (instr index, value).
fn guest_imm_sites(seq: &[ArmInstr]) -> Vec<(usize, i64)> {
    seq.iter()
        .enumerate()
        .filter_map(|(i, g)| match g {
            ArmInstr::Dp { op2: Operand2::Imm(v), .. } => Some((i, *v as i64)),
            _ => None,
        })
        .collect()
}

/// Host immediate sites: (instr index, slot, value). `lea` displacements
/// count as immediate sites — Figure 1's `-imm000 ↦ imm100` pairs a guest
/// data immediate with a host address displacement.
fn host_imm_sites(seq: &[X86Instr]) -> Vec<(usize, ImmSlot, i64)> {
    seq.iter()
        .enumerate()
        .filter_map(|(i, h)| match h {
            X86Instr::Mov { src: Operand::Imm(v), .. }
            | X86Instr::Alu { src: Operand::Imm(v), .. } => Some((i, ImmSlot::Data, *v as i64)),
            X86Instr::Lea { addr, .. } if addr.disp != 0 => {
                Some((i, ImmSlot::MemOffset, addr.disp as i64))
            }
            _ => None,
        })
        .collect()
}

/// Generate up to [`MAX_MAPPING_TRIES`] candidate initial mappings.
///
/// # Errors
///
/// Returns the Table 1 parameterization failure category when no
/// candidate can be built.
pub fn initial_mappings(pair: &SnippetPair) -> Result<Vec<InitialMapping>, ParamFail> {
    initial_mappings_limit(pair, MAX_MAPPING_TRIES)
}

/// [`initial_mappings`] with an explicit candidate cap (ablation knob for
/// the paper's "limit it to 5 tries").
pub fn initial_mappings_limit(
    pair: &SnippetPair,
    max_tries: usize,
) -> Result<Vec<InitialMapping>, ParamFail> {
    let guest_seq = pair.guest_instrs();
    let host_seq = pair.host_instrs();
    let gmem = guest_mem_sites(pair);
    let hmem = host_mem_sites(pair);

    // --- Memory operands: match by variable-name multiset. ---
    if gmem.len() != hmem.len() {
        return Err(ParamFail::MemCount);
    }
    {
        let mut gnames: Vec<&str> = gmem.iter().map(|s| s.var.as_str()).collect();
        let mut hnames: Vec<&str> = hmem.iter().map(|s| s.var.as_str()).collect();
        gnames.sort_unstable();
        hnames.sort_unstable();
        if gnames != hnames {
            return Err(ParamFail::MemName);
        }
    }
    // Pair occurrences per name in order.
    let mut by_name: BTreeMap<&str, (Vec<usize>, Vec<usize>)> = BTreeMap::new();
    for (i, s) in gmem.iter().enumerate() {
        by_name.entry(&s.var).or_default().0.push(i);
    }
    for (i, s) in hmem.iter().enumerate() {
        by_name.entry(&s.var).or_default().1.push(i);
    }
    let mut mem_pairs: Vec<(usize, usize)> = Vec::new(); // indices into gmem/hmem
    for (gs, hs) in by_name.values() {
        for (g, h) in gs.iter().zip(hs) {
            mem_pairs.push((*g, *h));
        }
    }
    mem_pairs.sort();

    // --- Live-in registers from normalized addresses. ---
    let glive = guest_live_ins(&guest_seq);
    let hlive = host_live_ins(&host_seq);
    let mut fixed: HashMap<ArmReg, Gpr> = HashMap::new();
    let mut taken: HashSet<Gpr> = HashSet::new();
    let bind =
        |g: ArmReg, h: Gpr, fixed: &mut HashMap<ArmReg, Gpr>, taken: &mut HashSet<Gpr>| -> bool {
            match fixed.get(&g) {
                Some(prev) => *prev == h,
                None => {
                    if taken.contains(&h) {
                        return false;
                    }
                    fixed.insert(g, h);
                    taken.insert(h);
                    true
                }
            }
        };
    for (gi, hi) in &mem_pairs {
        let gs = &gmem[*gi];
        let hs = &hmem[*hi];
        // Scales must denote the same factor when both sides have one.
        if let (Some((_, gsc)), Some((_, hsc))) = (gs.addr.index, hs.addr.index) {
            if !gsc.same_factor(hsc) {
                return Err(ParamFail::LiveIns);
            }
        }
        if let (Some(gb), Some(hb)) = (gs.addr.base, hs.addr.base) {
            if glive.contains(&gb) && hlive.contains(&hb) && !bind(gb, hb, &mut fixed, &mut taken) {
                return Err(ParamFail::LiveIns);
            }
        }
        if let (Some((gidx, _)), Some((hidx, _))) = (gs.addr.index, hs.addr.index) {
            if glive.contains(&gidx)
                && hlive.contains(&hidx)
                && !bind(gidx, hidx, &mut fixed, &mut taken)
            {
                return Err(ParamFail::LiveIns);
            }
        }
    }

    // --- Remaining live-ins by operation heuristic + permutations. ---
    let grem: Vec<ArmReg> = glive.iter().copied().filter(|g| !fixed.contains_key(g)).collect();
    let hrem: Vec<Gpr> = hlive.iter().copied().filter(|h| !taken.contains(h)).collect();
    if grem.len() != hrem.len() {
        return Err(ParamFail::LiveIns);
    }

    // Heuristic order: match by (class, position), then class, then order.
    let mut heuristic: Vec<(ArmReg, Gpr)> = Vec::new();
    {
        let mut hused = vec![false; hrem.len()];
        for g in &grem {
            let (gc, gp) = guest_first_use_class(&guest_seq, *g);
            let mut pick = None;
            for (i, h) in hrem.iter().enumerate() {
                if hused[i] {
                    continue;
                }
                let (hc, hp) = host_first_use_class(&host_seq, *h);
                if hc == gc && hp == gp {
                    pick = Some(i);
                    break;
                }
            }
            if pick.is_none() {
                for (i, h) in hrem.iter().enumerate() {
                    if hused[i] {
                        continue;
                    }
                    if host_first_use_class(&host_seq, *h).0 == gc {
                        pick = Some(i);
                        break;
                    }
                }
            }
            if pick.is_none() {
                pick = hused.iter().position(|u| !u);
            }
            let i = pick.expect("counts equal");
            hused[i] = true;
            heuristic.push((*g, hrem[i]));
        }
    }

    // --- Immediate operands. ---
    let mut imm_params: Vec<ImmParam> = Vec::new();
    // Memory displacements of paired operands share one parameter (only
    // when the guest side has an immediate-offset slot).
    for (gi, hi) in &mem_pairs {
        let gs = &gmem[*gi];
        let hs = &hmem[*hi];
        // Pair displacement slots only when both sides displace off a
        // base register; a host *absolute* operand carries the full
        // address in its displacement (the guest materializes it into a
        // register instead), and the two must stay concrete so symbolic
        // execution can prove the addresses equal.
        if gs.has_offset_slot && hs.addr.base.is_some() {
            let hsite = (hs.instr, ImmSlot::MemOffset, ImmRel::Id);
            // Two guest accesses hitting one host RMW instruction share a
            // single parameter (their actual offsets must then agree,
            // which the rule matcher enforces).
            if let Some(existing) =
                imm_params.iter_mut().find(|p: &&mut ImmParam| p.host_sites.contains(&hsite))
            {
                existing.extra_guest_sites.push((gs.instr, ImmSlot::MemOffset));
            } else {
                imm_params.push(ImmParam {
                    guest_site: (gs.instr, ImmSlot::MemOffset),
                    extra_guest_sites: vec![],
                    template_value: gs.addr.offset,
                    host_sites: vec![hsite],
                });
            }
        }
    }
    // Data immediates by value with Id/Neg/Not adaptors.
    let gimms = guest_imm_sites(&guest_seq);
    let himms = host_imm_sites(&host_seq);
    // Host displacement sites already bound to a paired memory operand
    // must not be re-bound to a data immediate.
    let reserved: HashSet<(usize, ImmSlot)> =
        imm_params.iter().flat_map(|p| p.host_sites.iter().map(|(i, s, _)| (*i, *s))).collect();
    let mut hused = vec![false; himms.len()];
    for (gidx, gv) in &gimms {
        let mut host_sites = Vec::new();
        for (k, (hidx, hslot, hv)) in himms.iter().enumerate() {
            if hused[k] || reserved.contains(&(*hidx, *hslot)) {
                continue;
            }
            let rel = if *hv as i32 == *gv as i32 {
                Some(ImmRel::Id)
            } else if *hv as i32 == (*gv as i32).wrapping_neg() {
                Some(ImmRel::Neg)
            } else if *hv as i32 == !(*gv as i32) {
                Some(ImmRel::Not)
            } else {
                None
            };
            if let Some(rel) = rel {
                hused[k] = true;
                host_sites.push((*hidx, *hslot, rel));
            }
        }
        if !host_sites.is_empty() {
            imm_params.push(ImmParam {
                guest_site: (*gidx, ImmSlot::Data),
                extra_guest_sites: vec![],
                template_value: *gv,
                host_sites,
            });
        }
        // Unpaired guest immediates stay concrete (paper: "left without
        // being parameterized").
    }

    // --- Assemble candidates: heuristic first, then permutations. ---
    let base_pairs: Vec<(ArmReg, Gpr)> = fixed.iter().map(|(g, h)| (*g, *h)).collect();
    let mem_instr_pairs: Vec<(usize, usize)> =
        mem_pairs.iter().map(|(gi, hi)| (gmem[*gi].instr, hmem[*hi].instr)).collect();
    let mut candidates = Vec::new();
    let max_tries = max_tries.max(1);
    let push_candidate = |assign: &[(ArmReg, Gpr)], candidates: &mut Vec<InitialMapping>| {
        let mut reg_pairs = base_pairs.clone();
        reg_pairs.extend_from_slice(assign);
        reg_pairs.sort_by_key(|(g, _)| g.index());
        if candidates.iter().any(|c: &InitialMapping| c.reg_pairs == reg_pairs) {
            return;
        }
        candidates.push(InitialMapping {
            reg_pairs,
            imm_params: imm_params.clone(),
            mem_pairs: mem_instr_pairs.clone(),
        });
    };
    push_candidate(&heuristic, &mut candidates);
    // Permutations of the ambiguous remainder.
    let mut perm: Vec<usize> = (0..hrem.len()).collect();
    loop {
        if candidates.len() >= max_tries {
            break;
        }
        let assign: Vec<(ArmReg, Gpr)> =
            grem.iter().zip(&perm).map(|(g, i)| (*g, hrem[*i])).collect();
        push_candidate(&assign, &mut candidates);
        if !next_permutation(&mut perm) {
            break;
        }
    }
    Ok(candidates)
}

fn next_permutation(p: &mut [usize]) -> bool {
    if p.len() < 2 {
        return false;
    }
    let mut i = p.len() - 1;
    while i > 0 && p[i - 1] >= p[i] {
        i -= 1;
    }
    if i == 0 {
        return false;
    }
    let mut j = p.len() - 1;
    while p[j] <= p[i - 1] {
        j -= 1;
    }
    p.swap(i - 1, j);
    p[i..].reverse();
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldbt_isa::SourceLoc;
    use ldbt_x86::X86Mem;

    fn mkpair(
        guest: Vec<(ArmInstr, Option<&str>)>,
        host: Vec<(X86Instr, Option<&str>)>,
    ) -> SnippetPair {
        SnippetPair {
            loc: SourceLoc::line(1),
            func: "f".into(),
            guest: guest.into_iter().map(|(g, v)| (g, v.map(str::to_string))).collect(),
            host: host.into_iter().map(|(h, v)| (h, v.map(str::to_string))).collect(),
        }
    }

    #[test]
    fn live_in_computation() {
        let seq = [
            ArmInstr::dp(DpOp::Add, ArmReg::R0, ArmReg::R1, Operand2::Reg(ArmReg::R0)),
            ArmInstr::dp(DpOp::Sub, ArmReg::R2, ArmReg::R0, Operand2::Imm(1)),
        ];
        // r1 and r0 are live-in (r0 used before redefined); r2 is not.
        assert_eq!(guest_live_ins(&seq), vec![ArmReg::R1, ArmReg::R0]);
    }

    #[test]
    fn figure1_mapping_by_operations() {
        // add r0,r0,r1; sub r0,r0,#5 vs leal -5(%edx,%ecx,1), %edx.
        let pair = mkpair(
            vec![
                (ArmInstr::dp(DpOp::Add, ArmReg::R0, ArmReg::R0, Operand2::Reg(ArmReg::R1)), None),
                (ArmInstr::dp(DpOp::Sub, ArmReg::R0, ArmReg::R0, Operand2::Imm(5)), None),
            ],
            vec![(
                X86Instr::Lea {
                    dst: Gpr::Edx,
                    addr: X86Mem { base: Some(Gpr::Edx), index: Some((Gpr::Ecx, 1)), disp: -5 },
                },
                None,
            )],
        );
        let cands = initial_mappings(&pair).unwrap();
        assert!(!cands.is_empty());
        assert!(cands.len() <= MAX_MAPPING_TRIES);
        // Some candidate maps {r0,r1} onto {edx,ecx} bijectively.
        for c in &cands {
            assert_eq!(c.reg_pairs.len(), 2);
            let hs: HashSet<Gpr> = c.reg_pairs.iter().map(|(_, h)| *h).collect();
            assert_eq!(hs.len(), 2);
        }
        // The immediate pair 5 ↦ -5 is found with the Neg adaptor.
        let c = &cands[0];
        assert_eq!(c.imm_params.len(), 1);
        assert_eq!(c.imm_params[0].host_sites[0].2, ImmRel::Neg);
    }

    #[test]
    fn figure2a_live_ins_via_normalized_addresses() {
        // ldr r0, [r1, r0, lsl #2]-ish vs movl -4(%ecx,%eax,4), %eax:
        // base↦base, index↦index.
        let pair = mkpair(
            vec![(
                ArmInstr::ldr(ArmReg::R0, ldbt_arm::AddrMode::RegShift(ArmReg::R1, ArmReg::R0, 2)),
                Some("arr"),
            )],
            vec![(
                X86Instr::Mov {
                    dst: Operand::Reg(Gpr::Eax),
                    src: Operand::Mem(X86Mem {
                        base: Some(Gpr::Ecx),
                        index: Some((Gpr::Eax, 4)),
                        disp: 0,
                    }),
                },
                Some("arr"),
            )],
        );
        let cands = initial_mappings(&pair).unwrap();
        let c = &cands[0];
        assert!(c.reg_pairs.contains(&(ArmReg::R1, Gpr::Ecx)), "{:?}", c.reg_pairs);
        assert!(c.reg_pairs.contains(&(ArmReg::R0, Gpr::Eax)), "{:?}", c.reg_pairs);
    }

    #[test]
    fn mem_count_mismatch() {
        let pair = mkpair(
            vec![(ArmInstr::ldr(ArmReg::R0, ldbt_arm::AddrMode::Imm(ArmReg::R1, 0)), Some("g"))],
            vec![(X86Instr::mov_rr(Gpr::Eax, Gpr::Ecx), None)],
        );
        assert_eq!(initial_mappings(&pair).unwrap_err(), ParamFail::MemCount);
    }

    #[test]
    fn mem_name_mismatch() {
        let pair = mkpair(
            vec![(ArmInstr::ldr(ArmReg::R0, ldbt_arm::AddrMode::Imm(ArmReg::R1, 0)), Some("g"))],
            vec![(
                X86Instr::Mov {
                    dst: Operand::Reg(Gpr::Eax),
                    src: Operand::Mem(X86Mem::base(Gpr::Ecx)),
                },
                Some("h"),
            )],
        );
        assert_eq!(initial_mappings(&pair).unwrap_err(), ParamFail::MemName);
    }

    #[test]
    fn live_in_count_mismatch() {
        // Guest has 2 live-ins, host 1.
        let pair = mkpair(
            vec![(
                ArmInstr::dp(DpOp::Add, ArmReg::R0, ArmReg::R0, Operand2::Reg(ArmReg::R1)),
                None,
            )],
            vec![(X86Instr::Un { op: ldbt_x86::UnOp::Inc, dst: Operand::Reg(Gpr::Eax) }, None)],
        );
        assert_eq!(initial_mappings(&pair).unwrap_err(), ParamFail::LiveIns);
    }

    #[test]
    fn scale_factor_mismatch_fails() {
        let pair = mkpair(
            vec![(
                ArmInstr::ldr(ArmReg::R0, ldbt_arm::AddrMode::RegShift(ArmReg::R1, ArmReg::R2, 2)),
                Some("a"),
            )],
            vec![(
                X86Instr::Mov {
                    dst: Operand::Reg(Gpr::Eax),
                    src: Operand::Mem(X86Mem {
                        base: Some(Gpr::Ecx),
                        index: Some((Gpr::Edx, 2)),
                        disp: 0,
                    }),
                },
                Some("a"),
            )],
        );
        assert_eq!(initial_mappings(&pair).unwrap_err(), ParamFail::LiveIns);
    }

    #[test]
    fn mem_offsets_share_a_parameter() {
        let pair = mkpair(
            vec![(ArmInstr::str(ArmReg::R1, ldbt_arm::AddrMode::Imm(ArmReg::R6, 0)), Some("s"))],
            vec![(
                X86Instr::Mov {
                    dst: Operand::Mem(X86Mem::base_disp(Gpr::Esi, 0x34)),
                    src: Operand::Reg(Gpr::Eax),
                },
                Some("s"),
            )],
        );
        let cands = initial_mappings(&pair).unwrap();
        let c = &cands[0];
        let p = c
            .imm_params
            .iter()
            .find(|p| p.guest_site.1 == ImmSlot::MemOffset)
            .expect("offset param");
        assert_eq!(p.host_sites[0].1, ImmSlot::MemOffset);
        assert_eq!(p.host_sites[0].2, ImmRel::Id);
    }

    #[test]
    fn permutations_stop_at_five() {
        // Four unmappable-by-heuristic live-ins would have 24 perms.
        let pair = mkpair(
            vec![
                (ArmInstr::dp(DpOp::Add, ArmReg::R0, ArmReg::R1, Operand2::Reg(ArmReg::R2)), None),
                (ArmInstr::dp(DpOp::Add, ArmReg::R0, ArmReg::R0, Operand2::Reg(ArmReg::R3)), None),
                (ArmInstr::dp(DpOp::Add, ArmReg::R0, ArmReg::R0, Operand2::Reg(ArmReg::R4)), None),
            ],
            vec![
                (X86Instr::alu_rr(AluOp::Add, Gpr::Eax, Gpr::Ecx), None),
                (X86Instr::alu_rr(AluOp::Add, Gpr::Eax, Gpr::Edx), None),
                (X86Instr::alu_rr(AluOp::Add, Gpr::Eax, Gpr::Esi), None),
            ],
        );
        let cands = initial_mappings(&pair).unwrap();
        assert!(cands.len() <= MAX_MAPPING_TRIES, "{}", cands.len());
        assert!(!cands.is_empty());
    }

    #[test]
    fn next_permutation_enumerates() {
        let mut p = vec![0, 1, 2];
        let mut seen = vec![p.clone()];
        while next_permutation(&mut p) {
            seen.push(p.clone());
        }
        assert_eq!(seen.len(), 6);
    }
}
