//! The end-to-end learning pipeline and its statistics (Table 1).
//!
//! The pipeline is staged so the expensive parts fan out across worker
//! threads while the observable output stays **byte-identical** to the
//! sequential per-pair loop:
//!
//! 1. **Classify** — preparation + parameterization run per pair on the
//!    [`crate::par`] worker pool; results come back in pair order.
//! 2. **Group** — surviving pairs are grouped by their exact snippet
//!    signature ([`crate::cache::pair_signature`]); each unique
//!    signature checks the [`VerifyCache`] once. Grouping happens
//!    *before* any verification, so hit/miss counts do not depend on
//!    thread scheduling.
//! 3. **Verify** — one representative per uncached signature is verified
//!    on the pool, each worker reusing one [`TermPool`] via
//!    [`TermPool::reset`]. `verify_time` is the wall-clock span of this
//!    stage.
//! 4. **Merge** — outcomes are replayed over the pairs in index order:
//!    counters bump and rules insert exactly as the sequential loop
//!    would, regardless of thread count or cache state.
//!
//! Thread count comes from [`LearnConfig::threads`], defaulting to the
//! `LDBT_THREADS` environment knob ([`configured_threads`]);
//! `LDBT_THREADS=1` takes the pure-sequential path (no threads spawned).

use crate::budget::{Budget, REASON_WORKER_PANIC};
use crate::cache::{pair_signature, sig_hash, VerifyCache, VerifyOutcome};
use crate::extract::{extract_with_stats, SnippetPair};
use crate::fault::{FaultPlan, FaultSite};
use crate::par::{run_indexed_isolated, run_indexed_with};
use crate::param::{InitialMapping, ParamFail, MAX_MAPPING_TRIES};
use crate::prepare::{prepare, PrepFail};
use crate::rule::RuleSet;
use crate::verify::{verify_in_budgeted, VerifyFail};
use ldbt_compiler::{compile_arm, compile_x86, CompileError, Options};
use ldbt_obs::registry::{SharedCounters, WorkerCounters};
use ldbt_obs::trace::{self, Scope, Val};
use ldbt_smt::TermPool;
use std::collections::HashMap;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Per-program learning statistics, mirroring Table 1's columns.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LearnStats {
    /// Program name.
    pub name: String,
    /// Total extracted snippet pairs.
    pub total: usize,
    /// Preparation failures: call/indirect ("CI").
    pub prep_ci: usize,
    /// Preparation failures: predicated instructions ("PI").
    pub prep_pi: usize,
    /// Preparation failures: multiple blocks ("MB").
    pub prep_mb: usize,
    /// Parameterization failures: memory-variable counts ("Num").
    pub par_num: usize,
    /// Parameterization failures: memory-variable names ("Name").
    pub par_name: usize,
    /// Parameterization failures: live-in mapping ("FailG").
    pub par_failg: usize,
    /// Verification failures: registers ("Rg").
    pub ver_rg: usize,
    /// Verification failures: memory ("Mm").
    pub ver_mm: usize,
    /// Verification failures: branch conditions ("Br").
    pub ver_br: usize,
    /// Verification failures: other (hazards, timeouts).
    pub ver_other: usize,
    /// Rules learned (before cross-program dedup).
    pub rules: usize,
    /// Verification outcomes replayed from the memo cache (duplicate
    /// snippets within the program plus cross-program repeats when the
    /// cache is shared).
    pub cache_hits: usize,
    /// Unique snippet signatures actually verified.
    pub cache_misses: usize,
    /// Wall-clock learning time.
    pub learn_time: Duration,
    /// Wall-clock span of the verification stage.
    pub verify_time: Duration,
}

impl LearnStats {
    /// Snippets that survived preparation.
    pub fn past_preparation(&self) -> usize {
        self.total - self.prep_ci - self.prep_pi - self.prep_mb
    }

    /// Yield: learned rules over total snippet pairs.
    pub fn yield_ratio(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.rules as f64 / self.total as f64
        }
    }

    /// Cache hit rate over all verification queries (0 when none ran).
    pub fn cache_hit_rate(&self) -> f64 {
        let queries = self.cache_hits + self.cache_misses;
        if queries == 0 {
            0.0
        } else {
            self.cache_hits as f64 / queries as f64
        }
    }

    /// Every deterministic counter (everything except the wall-clock
    /// times), for determinism comparisons across thread counts.
    pub fn counters(&self) -> [usize; 14] {
        [
            self.total,
            self.prep_ci,
            self.prep_pi,
            self.prep_mb,
            self.par_num,
            self.par_name,
            self.par_failg,
            self.ver_rg,
            self.ver_mm,
            self.ver_br,
            self.ver_other,
            self.rules,
            self.cache_hits,
            self.cache_misses,
        ]
    }
}

/// The result of learning from one program.
#[derive(Debug, Clone)]
pub struct LearnReport {
    /// The learned rules.
    pub rules: RuleSet,
    /// The pipeline statistics.
    pub stats: LearnStats,
}

/// Explicit control over the learning pipeline.
#[derive(Debug, Clone, Copy)]
pub struct LearnConfig {
    /// Worker threads for the classify and verify stages. `0` means
    /// "use [`configured_threads`]"; `1` takes the pure-sequential path.
    pub threads: usize,
    /// Initial-mapping try limit per snippet (the paper uses 5).
    pub max_tries: usize,
    /// Per-query resource budgets for the verify stage.
    pub budget: Budget,
    /// Contain per-item panics in the verify stage with `catch_unwind`
    /// (the panicked item becomes a [`VerifyFail::Other`] outcome). On
    /// by default; turning it off reverts to fail-fast workers. With no
    /// panics the output is identical either way.
    pub isolate: bool,
    /// Armed fault injection; defaults to the `LDBT_FAULT` environment
    /// plan ([`crate::fault::env_plan`]). Tests override explicitly.
    pub fault: Option<FaultPlan>,
}

impl Default for LearnConfig {
    fn default() -> Self {
        LearnConfig {
            threads: 0,
            max_tries: MAX_MAPPING_TRIES,
            budget: Budget::default(),
            isolate: true,
            fault: crate::fault::env_plan(),
        }
    }
}

impl LearnConfig {
    fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            configured_threads()
        } else {
            self.threads
        }
    }

    /// The verify-stage budget after fault injection: `solver-exhaust`
    /// replaces the SAT conflict budget with the fault seed.
    fn effective_budget(&self) -> Budget {
        match self.fault {
            Some(FaultPlan { site: FaultSite::SolverExhaust, seed }) => {
                Budget { solver_conflicts: seed, ..self.budget }
            }
            _ => self.budget,
        }
    }
}

/// Pure parse of the `LDBT_THREADS` knob against a fallback `auto`
/// (the machine's available parallelism). Documented parse table:
///
/// | `LDBT_THREADS` value      | worker threads |
/// |---------------------------|----------------|
/// | unset / empty             | `auto`         |
/// | `0`                       | `auto`         |
/// | `N` (integer ≥ 1)         | `N`            |
/// | garbage / negative        | `auto`         |
///
/// Whitespace is trimmed. `1` is honored as-is and takes the pipeline's
/// pure-sequential path (no threads spawned).
pub fn parse_threads(raw: Option<&str>, auto: usize) -> usize {
    match raw.map(str::trim) {
        None | Some("") => auto,
        Some(s) => s.parse().ok().filter(|&n| n >= 1).unwrap_or(auto),
    }
}

/// The worker-thread count from the `LDBT_THREADS` environment variable,
/// read once per process; defaults to the machine's available
/// parallelism (see [`parse_threads`] for the full table).
pub fn configured_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        let auto = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        parse_threads(std::env::var("LDBT_THREADS").ok().as_deref(), auto)
    })
}

/// Registry indices for [`worker_metrics`] (see [`WORKER_METRIC_NAMES`]).
pub mod wk {
    /// Pairs classified (prepare + parameterize) in stage 1.
    pub const CLASSIFIED_PAIRS: usize = 0;
    /// Representative pairs actually verified in stage 3 (cache misses).
    pub const VERIFIED_REPS: usize = 1;
    /// Representatives whose verification learned a rule.
    pub const RULES_LEARNED: usize = 2;
    /// Representatives whose every mapping try failed.
    pub const VERIFY_FAILURES: usize = 3;
    /// Worker panics contained by `catch_unwind` isolation.
    pub const CONTAINED_PANICS: usize = 4;
}

/// Names of the shared worker metrics, in [`wk`] index order.
pub const WORKER_METRIC_NAMES: &[&str] =
    &["classified_pairs", "verified_reps", "rules_learned", "verify_failures", "contained_panics"];

/// The process-wide aggregation target for parallel learn workers. Each
/// worker bumps a private [`WorkerCounters`] block that flushes here on
/// drop (scope join, or teardown after a contained panic), so the verify
/// hot loop never touches contended cache lines. Cumulative across every
/// pipeline run in the process; run reports snapshot it at exit.
pub fn worker_metrics() -> &'static SharedCounters {
    static METRICS: OnceLock<SharedCounters> = OnceLock::new();
    METRICS.get_or_init(|| SharedCounters::new(WORKER_METRIC_NAMES))
}

/// Per-pair outcome of the classify stage.
enum Classified {
    /// Rejected by preparation.
    Prep(PrepFail),
    /// Rejected by parameterization (an empty mapping list counts as
    /// "FailG", like [`ParamFail::LiveIns`]).
    Param(ParamFail),
    /// Survived; carries the candidate initial mappings.
    Ready(Vec<InitialMapping>),
}

impl Classified {
    /// Stable outcome tag for `classify` trace events (Table 1 column
    /// abbreviations).
    fn trace_name(&self) -> &'static str {
        match self {
            Classified::Prep(PrepFail::CallIndirect) => "prep_ci",
            Classified::Prep(PrepFail::Predicated) => "prep_pi",
            Classified::Prep(PrepFail::MultiBlock) => "prep_mb",
            Classified::Param(ParamFail::MemCount) => "par_num",
            Classified::Param(ParamFail::MemName) => "par_name",
            Classified::Param(ParamFail::LiveIns) => "par_failg",
            Classified::Ready(_) => "ready",
        }
    }
}

/// Stable outcome tag for `verify_item` trace events.
fn outcome_name(o: &VerifyOutcome) -> &'static str {
    match o {
        VerifyOutcome::Learned(_) => "learned",
        VerifyOutcome::Failed(VerifyFail::Registers) => "fail_rg",
        VerifyOutcome::Failed(VerifyFail::Memory) => "fail_mm",
        VerifyOutcome::Failed(VerifyFail::Branch) => "fail_br",
        VerifyOutcome::Failed(VerifyFail::Other(_)) => "fail_other",
    }
}

fn classify(pair: &SnippetPair, max_tries: usize) -> Classified {
    if let Err(f) = prepare(pair) {
        return Classified::Prep(f);
    }
    match crate::param::initial_mappings_limit(pair, max_tries) {
        Ok(m) if !m.is_empty() => Classified::Ready(m),
        Ok(_) | Err(ParamFail::LiveIns) => Classified::Param(ParamFail::LiveIns),
        Err(f) => Classified::Param(f),
    }
}

/// Run the mapping-try loop for one pair: first verifying mapping wins;
/// otherwise only the last failure is reported (as in the paper).
fn verify_pair(
    pool: &mut TermPool,
    pair: &SnippetPair,
    mappings: &[InitialMapping],
    budget: &Budget,
) -> VerifyOutcome {
    let mut last = VerifyFail::Other("no mapping");
    for m in mappings {
        pool.reset();
        match verify_in_budgeted(pool, pair, m, budget) {
            Ok(rule) => return VerifyOutcome::Learned(rule),
            Err(f) => last = f,
        }
    }
    VerifyOutcome::Failed(last)
}

/// Learn translation rules from one source program.
///
/// Compiles the program for both ISAs with `options`, extracts per-line
/// snippet pairs, and runs preparation → parameterization → verification,
/// retrying with up to 5 initial mappings (only the last verification
/// failure is counted, as in the paper). Uses the default
/// [`LearnConfig`] and a private memo cache.
///
/// # Errors
///
/// Returns a [`CompileError`] if the source does not compile.
pub fn learn_from_source(
    name: &str,
    source: &str,
    options: &Options,
) -> Result<LearnReport, CompileError> {
    learn_from_source_cached(
        name,
        source,
        options,
        &LearnConfig::default(),
        &mut VerifyCache::new(),
    )
}

/// [`learn_from_source`] with an explicit initial-mapping try limit
/// (ablation knob; the paper uses 5).
///
/// # Errors
///
/// Returns a [`CompileError`] if the source does not compile.
pub fn learn_from_source_with_tries(
    name: &str,
    source: &str,
    options: &Options,
    max_tries: usize,
) -> Result<LearnReport, CompileError> {
    let config = LearnConfig { max_tries, ..LearnConfig::default() };
    learn_from_source_cached(name, source, options, &config, &mut VerifyCache::new())
}

/// The full pipeline with explicit configuration and a caller-provided
/// memo cache (share one cache across programs to also memoize
/// cross-program repeats).
///
/// The output — rules, counters, cache hit/miss counts — is a pure
/// function of the inputs: independent of `config.threads` and of how
/// worker threads are scheduled. Only the two wall-clock durations vary.
///
/// # Errors
///
/// Returns a [`CompileError`] if the source does not compile.
pub fn learn_from_source_cached(
    name: &str,
    source: &str,
    options: &Options,
    config: &LearnConfig,
    cache: &mut VerifyCache,
) -> Result<LearnReport, CompileError> {
    let start = Instant::now();
    let guest = compile_arm(source, options)?;
    let host = compile_x86(source, options)?;
    let (pairs, dropped) = extract_with_stats(&guest, &host);
    let mut stats = LearnStats {
        name: name.to_string(),
        total: pairs.len() + dropped,
        prep_mb: dropped,
        ..Default::default()
    };
    let threads = config.effective_threads();
    if trace::enabled(Scope::Learn) {
        trace::emit(
            Scope::Learn,
            "phase",
            &[
                ("name", Val::S("extract")),
                ("program", Val::S(name)),
                ("pairs", Val::U(pairs.len() as u64)),
                ("dropped", Val::U(dropped as u64)),
            ],
        );
        if let Some(FaultPlan { site, seed }) = config.fault {
            trace::emit(
                Scope::Learn,
                "fault_armed",
                &[("site", Val::S(site.name())), ("seed", Val::U(seed))],
            );
        }
        trace::emit(
            Scope::Learn,
            "phase",
            &[("name", Val::S("classify")), ("items", Val::U(pairs.len() as u64))],
        );
    }

    // Stage 1: classify every pair (prepare + parameterize) on the pool.
    // Worker counters flush into the shared registry when the scope joins.
    let classified: Vec<Classified> = run_indexed_with(
        threads,
        pairs.len(),
        || WorkerCounters::new(worker_metrics()),
        |wc, i| {
            let c = classify(&pairs[i], config.max_tries);
            wc.bump(wk::CLASSIFIED_PAIRS);
            if trace::enabled(Scope::Learn) {
                trace::emit(
                    Scope::Learn,
                    "classify",
                    &[("item", Val::U(i as u64)), ("outcome", Val::S(c.trace_name()))],
                );
            }
            c
        },
    );

    // Stage 2: group verification work by snippet signature, consulting
    // the memo cache once per unique signature. `Fresh` groups remember
    // their first (representative) pair; later duplicates replay its
    // outcome.
    enum Group {
        Cached(VerifyOutcome),
        Fresh { rep: usize, sig: String },
    }
    let mut group_of: Vec<Option<usize>> = vec![None; pairs.len()];
    let mut group_ids: HashMap<String, usize> = HashMap::new();
    let mut groups: Vec<Group> = Vec::new();
    for (i, c) in classified.iter().enumerate() {
        if !matches!(c, Classified::Ready(_)) {
            continue;
        }
        let sig = pair_signature(&pairs[i], config.max_tries);
        let gid = match group_ids.get(&sig) {
            Some(&gid) => gid,
            None => {
                let gid = groups.len();
                let hit = cache.get(&sig);
                if trace::enabled(Scope::Learn) {
                    let ev = if hit.is_some() { "cache_hit" } else { "cache_miss" };
                    trace::emit(Scope::Learn, ev, &[("sig", Val::U(sig_hash(&sig)))]);
                }
                groups.push(match hit {
                    Some(o) => Group::Cached(o.clone()),
                    None => Group::Fresh { rep: i, sig: sig.clone() },
                });
                group_ids.insert(sig, gid);
                gid
            }
        };
        group_of[i] = Some(gid);
        stats.cache_hits += 1; // representatives are re-counted as misses below
    }

    // Stage 3: verify one representative per fresh group on the pool,
    // one reusable term pool per worker.
    let fresh: Vec<(usize, usize)> = groups
        .iter()
        .enumerate()
        .filter_map(|(gid, g)| match g {
            Group::Fresh { rep, .. } => Some((gid, *rep)),
            Group::Cached(_) => None,
        })
        .collect();
    stats.cache_misses = fresh.len();
    stats.cache_hits -= fresh.len();
    if trace::enabled(Scope::Learn) {
        trace::emit(
            Scope::Learn,
            "phase",
            &[
                ("name", Val::S("verify")),
                ("fresh", Val::U(fresh.len() as u64)),
                ("cached", Val::U((groups.len() - fresh.len()) as u64)),
            ],
        );
    }
    let vstart = Instant::now();
    let budget = config.effective_budget();
    // Fault injection: `worker-panic` poisons exactly one verify item,
    // chosen deterministically by the seed.
    let panic_at = match config.fault {
        Some(FaultPlan { site: FaultSite::WorkerPanic, seed }) if !fresh.is_empty() => {
            Some(seed as usize % fresh.len())
        }
        _ => None,
    };
    // Each worker owns one reusable term pool plus a private counter
    // block; the block flushes into the shared registry when the worker
    // state drops (scope join, or teardown after a contained panic).
    let make_state = || (TermPool::new(), WorkerCounters::new(worker_metrics()));
    let job = {
        let pairs = &pairs;
        let classified = &classified;
        let fresh = &fresh;
        let budget = &budget;
        move |state: &mut (TermPool, WorkerCounters), k: usize| {
            if panic_at == Some(k) {
                panic!("injected worker panic (LDBT_FAULT=worker-panic)");
            }
            let (pool, wc) = state;
            let (_, rep) = fresh[k];
            let outcome = match &classified[rep] {
                Classified::Ready(mappings) => verify_pair(pool, &pairs[rep], mappings, budget),
                _ => unreachable!("fresh groups come from Ready pairs"),
            };
            wc.bump(wk::VERIFIED_REPS);
            wc.bump(match &outcome {
                VerifyOutcome::Learned(_) => wk::RULES_LEARNED,
                VerifyOutcome::Failed(_) => wk::VERIFY_FAILURES,
            });
            if trace::enabled(Scope::Learn) {
                let mut fields =
                    vec![("item", Val::U(rep as u64)), ("outcome", Val::S(outcome_name(&outcome)))];
                if let VerifyOutcome::Failed(VerifyFail::Other(r)) = &outcome {
                    fields.push(("reason", Val::S(r)));
                }
                trace::emit(Scope::Learn, "verify_item", &fields);
            }
            outcome
        }
    };
    let outcomes: Vec<VerifyOutcome> = if config.isolate {
        run_indexed_isolated(threads, fresh.len(), make_state, job, |k| {
            // The panicked worker's counters flush when its discarded
            // state drops; only the panic itself is recorded here,
            // directly on the shared block.
            worker_metrics().add(wk::CONTAINED_PANICS, 1);
            if trace::enabled(Scope::Learn) {
                trace::emit(Scope::Learn, "contained_panic", &[("item", Val::U(k as u64))]);
            }
            VerifyOutcome::Failed(VerifyFail::Other(REASON_WORKER_PANIC))
        })
    } else {
        run_indexed_with(threads, fresh.len(), make_state, job)
    };
    stats.verify_time = vstart.elapsed();

    // Record fresh outcomes in the cache and resolve every group.
    let mut resolved: Vec<Option<VerifyOutcome>> = groups
        .iter()
        .map(|g| match g {
            Group::Cached(o) => Some(o.clone()),
            Group::Fresh { .. } => None,
        })
        .collect();
    for ((gid, _), outcome) in fresh.iter().zip(outcomes) {
        if let Group::Fresh { sig, .. } = &groups[*gid] {
            cache.insert(sig.clone(), outcome.clone());
        }
        resolved[*gid] = Some(outcome);
    }

    // Stage 4: replay outcomes over the pairs in index order — exactly
    // the sequence of counter bumps and rule insertions the sequential
    // per-pair loop performs.
    let mut rules = RuleSet::new();
    for (i, c) in classified.iter().enumerate() {
        match c {
            Classified::Prep(PrepFail::CallIndirect) => stats.prep_ci += 1,
            Classified::Prep(PrepFail::Predicated) => stats.prep_pi += 1,
            Classified::Prep(PrepFail::MultiBlock) => stats.prep_mb += 1,
            Classified::Param(ParamFail::MemCount) => stats.par_num += 1,
            Classified::Param(ParamFail::MemName) => stats.par_name += 1,
            Classified::Param(ParamFail::LiveIns) => stats.par_failg += 1,
            Classified::Ready(_) => {
                let gid = group_of[i].expect("ready pairs are grouped");
                match resolved[gid].as_ref().expect("group resolved") {
                    VerifyOutcome::Learned(rule) => {
                        rules.insert(rule.clone());
                        stats.rules += 1;
                    }
                    VerifyOutcome::Failed(VerifyFail::Registers) => stats.ver_rg += 1,
                    VerifyOutcome::Failed(VerifyFail::Memory) => stats.ver_mm += 1,
                    VerifyOutcome::Failed(VerifyFail::Branch) => stats.ver_br += 1,
                    VerifyOutcome::Failed(VerifyFail::Other(_)) => stats.ver_other += 1,
                }
            }
        }
    }
    stats.learn_time = start.elapsed();
    if trace::enabled(Scope::Learn) {
        trace::emit(
            Scope::Learn,
            "phase",
            &[
                ("name", Val::S("merge")),
                ("rules", Val::U(stats.rules as u64)),
                ("cache_hits", Val::U(stats.cache_hits as u64)),
                ("cache_misses", Val::U(stats.cache_misses as u64)),
            ],
        );
    }
    Ok(LearnReport { rules, stats })
}

/// Learn from a collection of programs, merging the rule sets and
/// sharing one memo cache across them.
///
/// # Errors
///
/// Returns the first [`CompileError`].
pub fn learn_rules(
    programs: &[(&str, &str)],
    options: &Options,
) -> Result<(RuleSet, Vec<LearnStats>), CompileError> {
    let config = LearnConfig::default();
    let mut cache = VerifyCache::new();
    let mut all = RuleSet::new();
    let mut stats = Vec::new();
    for (name, src) in programs {
        let report = learn_from_source_cached(name, src, options, &config, &mut cache)?;
        all.merge(&report.rules);
        stats.push(report.stats);
    }
    Ok((all, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROGRAM: &str = "
int total;
int data[64];
int hash(int x) {
  x = x ^ 2166136261;
  x = x * 599;
  x = x & 0xffff;
  return x;
}
int fill(int n) {
  for (int i = 0; i < n; i += 1) {
    data[i] = hash(i) + i * 4 - 1;
  }
  return data[n - 1];
}
int main() {
  total = fill(64);
  int acc = 0;
  for (int i = 0; i < 64; i += 1) {
    acc += data[i];
    if (acc > 100000) { acc -= total; }
  }
  return acc & 255;
}";

    #[test]
    fn learns_rules_from_a_real_program() {
        let report = learn_from_source("demo", PROGRAM, &Options::o2()).unwrap();
        let s = &report.stats;
        assert!(s.total > 10, "snippets: {}", s.total);
        assert!(s.rules > 0, "no rules learned: {s:?}");
        assert_eq!(
            s.total,
            s.prep_ci
                + s.prep_pi
                + s.prep_mb
                + s.par_num
                + s.par_name
                + s.par_failg
                + s.ver_rg
                + s.ver_mm
                + s.ver_br
                + s.ver_other
                + s.rules,
            "categories partition the snippets: {s:?}"
        );
        assert!(report.rules.len() <= s.rules, "dedup only shrinks");
        assert!(!report.rules.is_empty());
    }

    #[test]
    fn leave_one_out_merging() {
        let other = "int f(int a, int b) { return a + b - 1; }\nint main() { return f(1, 2); }";
        let (rules, stats) =
            learn_rules(&[("demo", PROGRAM), ("tiny", other)], &Options::o2()).unwrap();
        assert_eq!(stats.len(), 2);
        assert!(!rules.is_empty());
        assert!(rules.len() <= stats.iter().map(|s| s.rules).sum::<usize>());
    }

    #[test]
    fn rules_have_bounded_length() {
        let report = learn_from_source("demo", PROGRAM, &Options::o2()).unwrap();
        for rule in report.rules.iter() {
            assert!(!rule.is_empty() && rule.len() <= 16, "rule length {}", rule.len());
            assert!(!rule.host.is_empty());
        }
    }

    #[test]
    fn timing_is_recorded() {
        let report = learn_from_source("demo", PROGRAM, &Options::o2()).unwrap();
        assert!(report.stats.learn_time >= report.stats.verify_time);
    }

    #[test]
    fn parallel_output_is_byte_identical_to_sequential() {
        let seq = LearnConfig { threads: 1, ..LearnConfig::default() };
        let par = LearnConfig { threads: 4, ..LearnConfig::default() };
        let s = learn_from_source_cached(
            "demo",
            PROGRAM,
            &Options::o2(),
            &seq,
            &mut VerifyCache::new(),
        )
        .unwrap();
        let p = learn_from_source_cached(
            "demo",
            PROGRAM,
            &Options::o2(),
            &par,
            &mut VerifyCache::new(),
        )
        .unwrap();
        assert_eq!(s.stats.counters(), p.stats.counters());
        // Contents *and* iteration order must agree.
        let dump = |r: &RuleSet| {
            r.iter().map(crate::rule::Rule::canonical_text).collect::<Vec<_>>().join("\n")
        };
        assert_eq!(dump(&s.rules), dump(&p.rules));
    }

    #[test]
    fn memo_cache_partitioning_and_replay() {
        let config = LearnConfig::default();
        let mut cache = VerifyCache::new();
        let first =
            learn_from_source_cached("demo", PROGRAM, &Options::o2(), &config, &mut cache).unwrap();
        let s = &first.stats;
        // Hits + misses cover exactly the pairs that reached verification.
        assert_eq!(
            s.cache_hits + s.cache_misses,
            s.ver_rg + s.ver_mm + s.ver_br + s.ver_other + s.rules,
            "{s:?}"
        );
        assert_eq!(cache.len(), s.cache_misses);
        // A second run over the same program replays everything from the
        // cache with identical counters and rules.
        let second =
            learn_from_source_cached("demo", PROGRAM, &Options::o2(), &config, &mut cache).unwrap();
        assert_eq!(second.stats.cache_misses, 0);
        assert_eq!(second.stats.cache_hits, s.cache_hits + s.cache_misses);
        assert_eq!(second.stats.counters()[..12], s.counters()[..12]);
        let dump = |r: &RuleSet| {
            r.iter().map(crate::rule::Rule::canonical_text).collect::<Vec<_>>().join("\n")
        };
        assert_eq!(dump(&first.rules), dump(&second.rules));
    }

    #[test]
    fn explicit_tries_limit_still_learns() {
        let one = learn_from_source_with_tries("demo", PROGRAM, &Options::o2(), 1).unwrap();
        let five = learn_from_source_with_tries("demo", PROGRAM, &Options::o2(), 5).unwrap();
        assert!(one.stats.rules <= five.stats.rules, "more tries can only help");
    }

    #[test]
    fn threads_parse_table() {
        // (raw, expected) against auto = 6.
        let cases: &[(Option<&str>, usize)] = &[
            (None, 6),
            (Some(""), 6),
            (Some("   "), 6),
            (Some("0"), 6),
            (Some("-2"), 6),
            (Some("garbage"), 6),
            (Some("2.5"), 6),
            (Some("1"), 1),
            (Some("8"), 8),
            (Some(" 4 "), 4),
        ];
        for (raw, want) in cases {
            assert_eq!(parse_threads(*raw, 6), *want, "LDBT_THREADS={raw:?}");
        }
    }

    #[test]
    fn worker_metrics_aggregate_across_a_run() {
        // The registry is process-global and cumulative, so other tests
        // running concurrently may also bump it: assert on deltas with
        // `>=` where their contribution could interleave.
        let before: Vec<u64> =
            (0..WORKER_METRIC_NAMES.len()).map(|i| worker_metrics().get(i)).collect();
        let report = learn_from_source("demo", PROGRAM, &Options::o2()).unwrap();
        let delta = |i: usize| worker_metrics().get(i) - before[i];
        assert!(report.stats.total > 0, "fixture program extracts pairs");
        // Every extracted-and-kept pair was classified by some worker
        // (`total` also counts extraction drops, recorded as MB).
        assert!(delta(wk::CLASSIFIED_PAIRS) >= (report.stats.total - report.stats.prep_mb) as u64);
        // Each fresh signature was verified by some worker.
        assert!(delta(wk::VERIFIED_REPS) >= report.stats.cache_misses as u64);
        if report.stats.rules > 0 {
            assert!(delta(wk::RULES_LEARNED) >= 1);
        }
    }
}
