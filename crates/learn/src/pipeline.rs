//! The end-to-end learning pipeline and its statistics (Table 1).

use crate::extract::extract_with_stats;
use crate::param::ParamFail;
use crate::prepare::{prepare, PrepFail};
use crate::rule::RuleSet;
use crate::verify::{verify, VerifyFail};
use ldbt_compiler::{compile_arm, compile_x86, CompileError, Options};
use std::time::{Duration, Instant};

/// Per-program learning statistics, mirroring Table 1's columns.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LearnStats {
    /// Program name.
    pub name: String,
    /// Total extracted snippet pairs.
    pub total: usize,
    /// Preparation failures: call/indirect ("CI").
    pub prep_ci: usize,
    /// Preparation failures: predicated instructions ("PI").
    pub prep_pi: usize,
    /// Preparation failures: multiple blocks ("MB").
    pub prep_mb: usize,
    /// Parameterization failures: memory-variable counts ("Num").
    pub par_num: usize,
    /// Parameterization failures: memory-variable names ("Name").
    pub par_name: usize,
    /// Parameterization failures: live-in mapping ("FailG").
    pub par_failg: usize,
    /// Verification failures: registers ("Rg").
    pub ver_rg: usize,
    /// Verification failures: memory ("Mm").
    pub ver_mm: usize,
    /// Verification failures: branch conditions ("Br").
    pub ver_br: usize,
    /// Verification failures: other (hazards, timeouts).
    pub ver_other: usize,
    /// Rules learned (before cross-program dedup).
    pub rules: usize,
    /// Wall-clock learning time.
    pub learn_time: Duration,
    /// Time spent in the verification step alone.
    pub verify_time: Duration,
}

impl LearnStats {
    /// Snippets that survived preparation.
    pub fn past_preparation(&self) -> usize {
        self.total - self.prep_ci - self.prep_pi - self.prep_mb
    }

    /// Yield: learned rules over total snippet pairs.
    pub fn yield_ratio(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.rules as f64 / self.total as f64
        }
    }
}

/// The result of learning from one program.
#[derive(Debug, Clone)]
pub struct LearnReport {
    /// The learned rules.
    pub rules: RuleSet,
    /// The pipeline statistics.
    pub stats: LearnStats,
}

/// Learn translation rules from one source program.
///
/// Compiles the program for both ISAs with `options`, extracts per-line
/// snippet pairs, and runs preparation → parameterization → verification,
/// retrying with up to 5 initial mappings (only the last verification
/// failure is counted, as in the paper).
///
/// # Errors
///
/// Returns a [`CompileError`] if the source does not compile.
pub fn learn_from_source(
    name: &str,
    source: &str,
    options: &Options,
) -> Result<LearnReport, CompileError> {
    learn_from_source_with_tries(name, source, options, crate::param::MAX_MAPPING_TRIES)
}

/// [`learn_from_source`] with an explicit initial-mapping try limit
/// (ablation knob; the paper uses 5).
pub fn learn_from_source_with_tries(
    name: &str,
    source: &str,
    options: &Options,
    max_tries: usize,
) -> Result<LearnReport, CompileError> {
    let start = Instant::now();
    let guest = compile_arm(source, options)?;
    let host = compile_x86(source, options)?;
    let (pairs, dropped) = extract_with_stats(&guest, &host);
    let mut stats = LearnStats {
        name: name.to_string(),
        total: pairs.len() + dropped,
        prep_mb: dropped,
        ..Default::default()
    };
    let mut rules = RuleSet::new();
    for pair in &pairs {
        match prepare(pair) {
            Err(PrepFail::CallIndirect) => {
                stats.prep_ci += 1;
                continue;
            }
            Err(PrepFail::Predicated) => {
                stats.prep_pi += 1;
                continue;
            }
            Err(PrepFail::MultiBlock) => {
                stats.prep_mb += 1;
                continue;
            }
            Ok(()) => {}
        }
        let mappings = match crate::param::initial_mappings_limit(pair, max_tries) {
            Ok(m) if !m.is_empty() => m,
            Ok(_) => {
                stats.par_failg += 1;
                continue;
            }
            Err(ParamFail::MemCount) => {
                stats.par_num += 1;
                continue;
            }
            Err(ParamFail::MemName) => {
                stats.par_name += 1;
                continue;
            }
            Err(ParamFail::LiveIns) => {
                stats.par_failg += 1;
                continue;
            }
        };
        let vstart = Instant::now();
        let mut last_fail = VerifyFail::Other;
        let mut learned = false;
        for m in &mappings {
            match verify(pair, m) {
                Ok(rule) => {
                    rules.insert(rule);
                    stats.rules += 1;
                    learned = true;
                    break;
                }
                Err(f) => last_fail = f,
            }
        }
        stats.verify_time += vstart.elapsed();
        if !learned {
            match last_fail {
                VerifyFail::Registers => stats.ver_rg += 1,
                VerifyFail::Memory => stats.ver_mm += 1,
                VerifyFail::Branch => stats.ver_br += 1,
                VerifyFail::Other => stats.ver_other += 1,
            }
        }
    }
    stats.learn_time = start.elapsed();
    Ok(LearnReport { rules, stats })
}

/// Learn from a collection of programs, merging the rule sets.
///
/// # Errors
///
/// Returns the first [`CompileError`].
pub fn learn_rules(
    programs: &[(&str, &str)],
    options: &Options,
) -> Result<(RuleSet, Vec<LearnStats>), CompileError> {
    let mut all = RuleSet::new();
    let mut stats = Vec::new();
    for (name, src) in programs {
        let report = learn_from_source(name, src, options)?;
        all.extend_from(&report.rules);
        stats.push(report.stats);
    }
    Ok((all, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROGRAM: &str = "
int total;
int data[64];
int hash(int x) {
  x = x ^ 2166136261;
  x = x * 599;
  x = x & 0xffff;
  return x;
}
int fill(int n) {
  for (int i = 0; i < n; i += 1) {
    data[i] = hash(i) + i * 4 - 1;
  }
  return data[n - 1];
}
int main() {
  total = fill(64);
  int acc = 0;
  for (int i = 0; i < 64; i += 1) {
    acc += data[i];
    if (acc > 100000) { acc -= total; }
  }
  return acc & 255;
}";

    #[test]
    fn learns_rules_from_a_real_program() {
        let report = learn_from_source("demo", PROGRAM, &Options::o2()).unwrap();
        let s = &report.stats;
        assert!(s.total > 10, "snippets: {}", s.total);
        assert!(s.rules > 0, "no rules learned: {s:?}");
        assert_eq!(
            s.total,
            s.prep_ci
                + s.prep_pi
                + s.prep_mb
                + s.par_num
                + s.par_name
                + s.par_failg
                + s.ver_rg
                + s.ver_mm
                + s.ver_br
                + s.ver_other
                + s.rules,
            "categories partition the snippets: {s:?}"
        );
        assert!(report.rules.len() <= s.rules, "dedup only shrinks");
        assert!(report.rules.len() > 0);
    }

    #[test]
    fn leave_one_out_merging() {
        let other = "int f(int a, int b) { return a + b - 1; }\nint main() { return f(1, 2); }";
        let (rules, stats) =
            learn_rules(&[("demo", PROGRAM), ("tiny", other)], &Options::o2()).unwrap();
        assert_eq!(stats.len(), 2);
        assert!(rules.len() > 0);
        assert!(rules.len() <= stats.iter().map(|s| s.rules).sum::<usize>());
    }

    #[test]
    fn rules_have_bounded_length() {
        let report = learn_from_source("demo", PROGRAM, &Options::o2()).unwrap();
        for rule in report.rules.iter() {
            assert!(rule.len() >= 1 && rule.len() <= 16, "rule length {}", rule.len());
            assert!(!rule.host.is_empty());
        }
    }

    #[test]
    fn timing_is_recorded() {
        let report = learn_from_source("demo", PROGRAM, &Options::o2()).unwrap();
        assert!(report.stats.learn_time >= report.stats.verify_time);
    }
}
