//! A minimal scoped worker pool for the learning pipeline.
//!
//! Fan-out runs on [`std::thread::scope`] with self-scheduling chunked
//! index distribution: an [`AtomicUsize`] cursor hands out chunks of
//! indices, so idle workers keep pulling work and uneven per-item cost
//! (a SAT-heavy verification next to an instant refutation) balances
//! automatically. Each worker collects `(index, result)` pairs locally
//! and the results are reassembled in index order after the scope joins,
//! so the output is independent of thread scheduling. With `threads <= 1`
//! no thread is spawned at all — the pure-sequential path.

use ldbt_obs::trace::{self, Scope, Val};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Record one pool fan-out in the learn trace (the pool's only caller
/// is the learning pipeline). No-op when tracing is off.
fn trace_fanout(items: usize, workers: usize, chunk: usize) {
    trace::emit(
        Scope::Learn,
        "fanout",
        &[
            ("items", Val::U(items as u64)),
            ("workers", Val::U(workers as u64)),
            ("chunk", Val::U(chunk as u64)),
        ],
    );
}

/// Run `job` for every index in `0..n` across up to `threads` workers
/// and return the results in index order.
///
/// `make_state` builds one scratch state per worker (the verifier reuses
/// a `TermPool` this way); the sequential path builds exactly one.
pub fn run_indexed_with<S, T, M, F>(threads: usize, n: usize, make_state: M, job: F) -> Vec<T>
where
    T: Send,
    M: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        let mut state = make_state();
        return (0..n).map(|i| job(&mut state, i)).collect();
    }
    let workers = threads.min(n);
    // Chunked self-scheduling: cheap stages over many items grab larger
    // chunks to cut cursor contention, while expensive stages (few items
    // per worker) degrade to chunk = 1 and so still balance well.
    let chunk = (n / (workers * 8)).max(1);
    trace_fanout(n, workers, chunk);
    let cursor = AtomicUsize::new(0);
    let collected: Vec<Vec<(usize, T)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut state = make_state();
                    let mut local = Vec::new();
                    loop {
                        let lo = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if lo >= n {
                            break;
                        }
                        for i in lo..(lo + chunk).min(n) {
                            local.push((i, job(&mut state, i)));
                        }
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (i, v) in collected.into_iter().flatten() {
        out[i] = Some(v);
    }
    out.into_iter().map(|v| v.expect("every index visited")).collect()
}

/// [`run_indexed_with`] for jobs that need no per-worker state.
pub fn run_indexed<T, F>(threads: usize, n: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_with(threads, n, || (), |(), i| job(i))
}

/// [`run_indexed_with`] with per-item panic isolation.
///
/// A `job` panic is contained to its item: the panic is caught, the
/// item's result comes from `on_panic(i)`, the worker's scratch state is
/// discarded (it may be poisoned mid-update) and rebuilt with
/// `make_state` before the next item, and every other item proceeds
/// normally. When no job panics the output is identical to
/// [`run_indexed_with`] — isolation never reorders or perturbs results.
pub fn run_indexed_isolated<S, T, M, F, P>(
    threads: usize,
    n: usize,
    make_state: M,
    job: F,
    on_panic: P,
) -> Vec<T>
where
    T: Send,
    M: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
    P: Fn(usize) -> T + Sync,
{
    let run_one = |state: &mut Option<S>, i: usize| -> T {
        let s = state.get_or_insert_with(&make_state);
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(s, i))) {
            Ok(v) => v,
            Err(_) => {
                *state = None;
                on_panic(i)
            }
        }
    };
    if threads <= 1 || n <= 1 {
        let mut state = None;
        return (0..n).map(|i| run_one(&mut state, i)).collect();
    }
    let workers = threads.min(n);
    let chunk = (n / (workers * 8)).max(1);
    trace_fanout(n, workers, chunk);
    let cursor = AtomicUsize::new(0);
    let collected: Vec<Vec<(usize, T)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut state = None;
                    let mut local = Vec::new();
                    loop {
                        let lo = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if lo >= n {
                            break;
                        }
                        for i in lo..(lo + chunk).min(n) {
                            local.push((i, run_one(&mut state, i)));
                        }
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (i, v) in collected.into_iter().flatten() {
        out[i] = Some(v);
    }
    out.into_iter().map(|v| v.expect("every index visited")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for threads in [1, 2, 4, 7] {
            let out = run_indexed(threads, 100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert_eq!(run_indexed(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(4, 1, |i| i + 10), vec![10]);
        // More threads than items.
        assert_eq!(run_indexed(16, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn worker_state_is_reused_within_a_worker() {
        // Each worker counts how many items it processed; the counts must
        // partition the index space.
        let counts = run_indexed_with(
            3,
            50,
            || 0usize,
            |seen, _i| {
                *seen += 1;
                *seen
            },
        );
        // Sequential check: with one worker the state increments 1..=n.
        let seq = run_indexed_with(
            1,
            5,
            || 0usize,
            |seen, _| {
                *seen += 1;
                *seen
            },
        );
        assert_eq!(seq, vec![1, 2, 3, 4, 5]);
        assert_eq!(counts.len(), 50);
    }

    #[test]
    fn isolated_matches_plain_when_nothing_panics() {
        for threads in [1, 4] {
            let plain = run_indexed_with(threads, 40, || (), |(), i| i * 3);
            let isolated = run_indexed_isolated(threads, 40, || (), |(), i| i * 3, |_| usize::MAX);
            assert_eq!(plain, isolated, "threads={threads}");
        }
    }

    #[test]
    fn panics_are_contained_to_their_item() {
        // Suppress the default panic-to-stderr noise for the injected panics.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        for threads in [1, 4] {
            let out = run_indexed_isolated(
                threads,
                20,
                || 0u32,
                |state, i| {
                    *state += 1;
                    if i == 7 || i == 13 {
                        panic!("injected");
                    }
                    i
                },
                |i| 1000 + i,
            );
            let want: Vec<usize> =
                (0..20).map(|i| if i == 7 || i == 13 { 1000 + i } else { i }).collect();
            assert_eq!(out, want, "threads={threads}");
        }
        std::panic::set_hook(prev);
    }
}
