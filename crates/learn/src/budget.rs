//! Explicit resource budgets for verification (fault containment).
//!
//! Each verification query consumes three bounded resources: symbolic
//! step fuel in `ldbt_symexec`, interned terms in the shared
//! [`ldbt_smt::TermPool`], and SAT conflicts in the equivalence oracle.
//! A [`Budget`] makes all three explicit so exhaustion surfaces as a
//! recorded [`crate::verify::VerifyFail::Other`] reason instead of an
//! unbounded run or an abort — one degenerate snippet can cost at most
//! its budget, never the whole learning run.

/// Per-query resource limits threaded through [`crate::verify`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// SAT conflict budget per equivalence query (the oracle answers
    /// `Unknown` once exceeded).
    pub solver_conflicts: u64,
    /// Symbolic-execution step fuel per instruction sequence.
    pub symexec_steps: usize,
    /// Soft cap on live terms in the query's [`ldbt_smt::TermPool`].
    pub term_pool_cap: usize,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            // Matches the pre-budget EQUIV_BUDGET constant, so default
            // learning output is unchanged.
            solver_conflicts: 100_000,
            // Snippets are short basic-block fragments; 4096 steps is
            // orders of magnitude above any real pair.
            symexec_steps: 4_096,
            // One query on the largest suite snippets interns a few
            // thousand terms; a million is a generous ceiling.
            term_pool_cap: 1 << 20,
        }
    }
}

/// Recorded reason: the SAT conflict budget ran out.
pub const REASON_SOLVER_BUDGET: &str = "solver conflict budget exhausted";
/// Recorded reason: symbolic-execution step fuel ran out.
pub const REASON_SYMEXEC_FUEL: &str = "symexec step fuel exhausted";
/// Recorded reason: the term-pool soft cap was exceeded.
pub const REASON_TERM_CAP: &str = "term pool cap exceeded";
/// Recorded reason: a learning worker panicked on this item.
pub const REASON_WORKER_PANIC: &str = "worker panicked";
