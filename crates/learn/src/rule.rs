//! Parameterized translation rules and the rule store.

use ldbt_arm::{AddrMode, ArmInstr, ArmReg, Operand2};
use ldbt_x86::{Gpr, Operand, X86Instr, X86Mem};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::fmt::Write as _;

/// How a host immediate is derived from its guest parameter (paper §3.2's
/// "arithmetic/logical operations to accommodate the differences").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImmRel {
    /// Same value.
    Id,
    /// Additive inverse (`-imm000 ↦ imm100` in Figure 1).
    Neg,
    /// Bitwise complement.
    Not,
}

impl ImmRel {
    /// Apply the relation.
    pub fn apply(self, v: i64) -> i64 {
        match self {
            ImmRel::Id => v,
            ImmRel::Neg => v.wrapping_neg(),
            ImmRel::Not => !v,
        }
    }
}

/// Which immediate slot of an instruction a parameter occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImmSlot {
    /// A data immediate (`#imm`, `$imm`).
    Data,
    /// The displacement of a memory operand.
    MemOffset,
}

/// One parameterized immediate: a guest site and the host sites bound to
/// it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImmParam {
    /// Guest instruction index and slot.
    pub guest_site: (usize, ImmSlot),
    /// Additional guest sites bound to the *same* parameter (e.g. the
    /// load and store displacements of a read-modify-write pattern);
    /// matching requires their actual values to agree.
    pub extra_guest_sites: Vec<(usize, ImmSlot)>,
    /// Template value at the guest site (for diagnostics).
    pub template_value: i64,
    /// Host sites receiving the (transformed) bound value.
    pub host_sites: Vec<(usize, ImmSlot, ImmRel)>,
}

/// A register/immediate binding produced by matching a rule against
/// concrete guest code.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Binding {
    /// Template guest register → actual guest register.
    pub regs: HashMap<ArmReg, ArmReg>,
    /// Bound value per immediate parameter (indexed like
    /// [`Rule::imm_params`]).
    pub imms: Vec<i64>,
}

/// A learned, verified, parameterized translation rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// The guest instruction template.
    pub guest: Vec<ArmInstr>,
    /// The host instruction template.
    pub host: Vec<X86Instr>,
    /// Host register → guest register correspondence (initial ∪ final
    /// mapping). Every register used by `host` appears here.
    pub host_reg_of: HashMap<Gpr, ArmReg>,
    /// Parameterized immediates.
    pub imm_params: Vec<ImmParam>,
    /// NZCV mask (N=8, Z=4, C=2, V=1) of guest flags the guest template
    /// writes but the host template does *not* emulate; the DBT refuses
    /// to apply the rule if any of these is live afterwards (paper §5).
    pub unemulated_flags: u8,
    /// Whether the rule ends with a (conditional) branch pair.
    pub has_branch: bool,
}

impl Rule {
    /// Rule length = number of guest instructions (Figure 12's metric).
    pub fn len(&self) -> usize {
        self.guest.len()
    }

    /// Whether the guest template is empty (never true for learned rules).
    pub fn is_empty(&self) -> bool {
        self.guest.is_empty()
    }

    /// The hash-table key: arithmetic mean of the guest opcode ids
    /// (paper §4).
    pub fn hash_key(&self) -> u32 {
        hash_key(&self.guest)
    }

    /// Try to match this rule against a concrete guest sequence.
    ///
    /// Registers unify up to a *bijective* renaming; immediates at
    /// parameterized sites bind, all others must match exactly; branch
    /// offsets are ignored (targets are re-resolved by the DBT).
    pub fn matches(&self, seq: &[ArmInstr]) -> Option<Binding> {
        if seq.len() != self.guest.len() {
            return None;
        }
        let mut regs: HashMap<ArmReg, ArmReg> = HashMap::new();
        let mut taken: HashMap<ArmReg, ArmReg> = HashMap::new();
        let mut imms = vec![0i64; self.imm_params.len()];
        // (param index, is_primary_site).
        let param_of = |site: (usize, ImmSlot)| -> Option<(usize, bool)> {
            for (k, p) in self.imm_params.iter().enumerate() {
                if p.guest_site == site {
                    return Some((k, true));
                }
                if p.extra_guest_sites.contains(&site) {
                    return Some((k, false));
                }
            }
            None
        };
        let mut bind_reg = |t: ArmReg, a: ArmReg| -> bool {
            match regs.get(&t) {
                Some(prev) => *prev == a,
                None => {
                    if taken.contains_key(&a) {
                        return false;
                    }
                    regs.insert(t, a);
                    taken.insert(a, t);
                    true
                }
            }
        };
        let mut bound = vec![false; self.imm_params.len()];
        let mut bind_imm =
            |idx: usize, slot: ImmSlot, tmpl: i64, actual: i64, imms: &mut Vec<i64>| -> bool {
                match param_of((idx, slot)) {
                    Some((p, _)) => {
                        if bound[p] {
                            // A shared parameter: every site must agree.
                            imms[p] == actual
                        } else {
                            bound[p] = true;
                            imms[p] = actual;
                            true
                        }
                    }
                    None => tmpl == actual,
                }
            };
        for (idx, (t, a)) in self.guest.iter().zip(seq).enumerate() {
            match (*t, *a) {
                (
                    ArmInstr::Dp { op: to, rd: trd, rn: trn, op2: top2, set_flags: ts, cond: tc },
                    ArmInstr::Dp { op: ao, rd: ard, rn: arn, op2: aop2, set_flags: as_, cond: ac },
                ) => {
                    if to != ao || ts != as_ || tc != ac {
                        return None;
                    }
                    if !to.is_compare() && !bind_reg(trd, ard) {
                        return None;
                    }
                    if !to.is_move() && !bind_reg(trn, arn) {
                        return None;
                    }
                    match (top2, aop2) {
                        (Operand2::Imm(tv), Operand2::Imm(av)) => {
                            if !bind_imm(idx, ImmSlot::Data, tv as i64, av as i64, &mut imms) {
                                return None;
                            }
                        }
                        (Operand2::Reg(tr), Operand2::Reg(ar)) => {
                            if !bind_reg(tr, ar) {
                                return None;
                            }
                        }
                        (Operand2::RegShift(tr, tsh), Operand2::RegShift(ar, ash)) => {
                            if tsh != ash || !bind_reg(tr, ar) {
                                return None;
                            }
                        }
                        _ => return None,
                    }
                }
                (
                    ArmInstr::Mul { rd: trd, rn: trn, rm: trm, set_flags: ts, cond: tc },
                    ArmInstr::Mul { rd: ard, rn: arn, rm: arm, set_flags: as_, cond: ac },
                ) => {
                    if ts != as_ || tc != ac {
                        return None;
                    }
                    if !bind_reg(trd, ard) || !bind_reg(trn, arn) || !bind_reg(trm, arm) {
                        return None;
                    }
                }
                (
                    ArmInstr::Ldr { rt: trt, addr: ta, width: tw, signed: tsg, cond: tc },
                    ArmInstr::Ldr { rt: art, addr: aa, width: aw, signed: asg, cond: ac },
                ) => {
                    if tw != aw || tsg != asg || tc != ac || !bind_reg(trt, art) {
                        return None;
                    }
                    if !match_addr(idx, ta, aa, &mut bind_reg, &mut bind_imm, &mut imms) {
                        return None;
                    }
                }
                (
                    ArmInstr::Str { rt: trt, addr: ta, width: tw, cond: tc },
                    ArmInstr::Str { rt: art, addr: aa, width: aw, cond: ac },
                ) => {
                    if tw != aw || tc != ac || !bind_reg(trt, art) {
                        return None;
                    }
                    if !match_addr(idx, ta, aa, &mut bind_reg, &mut bind_imm, &mut imms) {
                        return None;
                    }
                }
                (ArmInstr::B { cond: tc, .. }, ArmInstr::B { cond: ac, .. }) => {
                    if tc != ac {
                        return None;
                    }
                }
                _ => return None,
            }
        }
        Some(Binding { regs, imms })
    }

    /// Instantiate the host template under a binding.
    ///
    /// `host_reg_alloc` maps an *actual guest register* to the host
    /// register the DBT allocated for it. Branch targets are emitted as 0
    /// and patched by the DBT.
    ///
    /// # Panics
    ///
    /// Panics if the rule is malformed (a host register without a guest
    /// correspondence — excluded by construction in the verifier).
    pub fn instantiate(
        &self,
        binding: &Binding,
        mut host_reg_alloc: impl FnMut(ArmReg) -> Gpr,
    ) -> Vec<X86Instr> {
        let mut sub_reg =
            |h: Gpr| -> Gpr {
                let template_guest = self.host_reg_of.get(&h).copied().unwrap_or_else(|| {
                    panic!("host register {h} has no guest correspondence in rule")
                });
                let actual_guest =
                    binding.regs.get(&template_guest).copied().unwrap_or_else(|| {
                        panic!("guest template register {template_guest} unbound")
                    });
                host_reg_alloc(actual_guest)
            };
        let imm_at = |idx: usize, slot: ImmSlot, template: i64| -> i64 {
            for (p, param) in self.imm_params.iter().enumerate() {
                for (hi, hslot, rel) in &param.host_sites {
                    if *hi == idx && *hslot == slot {
                        return rel.apply(binding.imms[p]);
                    }
                }
            }
            template
        };
        let mut out = Vec::with_capacity(self.host.len());
        for (idx, h) in self.host.iter().enumerate() {
            let sub_mem = |m: &X86Mem, sub_reg: &mut dyn FnMut(Gpr) -> Gpr| -> X86Mem {
                X86Mem {
                    base: m.base.map(&mut *sub_reg),
                    index: m.index.map(|(r, s)| (sub_reg(r), s)),
                    disp: imm_at(idx, ImmSlot::MemOffset, m.disp as i64) as i32,
                }
            };
            let sub_op = |o: &Operand, sub_reg: &mut dyn FnMut(Gpr) -> Gpr| -> Operand {
                match o {
                    Operand::Reg(r) => Operand::Reg(sub_reg(*r)),
                    Operand::Imm(v) => Operand::Imm(imm_at(idx, ImmSlot::Data, *v as i64) as i32),
                    Operand::Mem(m) => Operand::Mem(sub_mem(m, sub_reg)),
                }
            };
            let new = match h {
                X86Instr::Mov { dst, src } => {
                    X86Instr::Mov { dst: sub_op(dst, &mut sub_reg), src: sub_op(src, &mut sub_reg) }
                }
                X86Instr::Alu { op, dst, src } => X86Instr::Alu {
                    op: *op,
                    dst: sub_op(dst, &mut sub_reg),
                    src: sub_op(src, &mut sub_reg),
                },
                X86Instr::Lea { dst, addr } => {
                    X86Instr::Lea { dst: sub_reg(*dst), addr: sub_mem(addr, &mut sub_reg) }
                }
                X86Instr::Imul { dst, src } => {
                    X86Instr::Imul { dst: sub_reg(*dst), src: sub_op(src, &mut sub_reg) }
                }
                X86Instr::Shift { op, dst, count } => {
                    X86Instr::Shift { op: *op, dst: sub_op(dst, &mut sub_reg), count: *count }
                }
                X86Instr::Un { op, dst } => {
                    X86Instr::Un { op: *op, dst: sub_op(dst, &mut sub_reg) }
                }
                X86Instr::Movx { sign, width, dst, src } => X86Instr::Movx {
                    sign: *sign,
                    width: *width,
                    dst: sub_reg(*dst),
                    src: sub_op(src, &mut sub_reg),
                },
                X86Instr::MovStore { width, src, dst } => X86Instr::MovStore {
                    width: *width,
                    src: sub_reg(*src),
                    dst: sub_mem(dst, &mut sub_reg),
                },
                X86Instr::Setcc { cc, dst } => X86Instr::Setcc { cc: *cc, dst: sub_reg(*dst) },
                X86Instr::Jcc { cc, .. } => X86Instr::Jcc { cc: *cc, target: 0 },
                other => panic!("unexpected instruction in host template: {other}"),
            };
            out.push(new);
        }
        out
    }

    /// A canonical text key used for deduplication.
    pub fn dedup_key(&self) -> String {
        // Canonicalize register names through first-occurrence numbering.
        let mut names: HashMap<ArmReg, usize> = HashMap::new();
        let mut canon = String::new();
        for g in &self.guest {
            let mut rendered = g.to_string();
            let mut regs = guest_regs_of(g);
            // Longer names first so `r1` cannot corrupt `r12` in the text.
            regs.sort_by_key(|r| std::cmp::Reverse(r.to_string().len()));
            for r in regs {
                let n = names.len();
                let id = *names.entry(r).or_insert(n);
                rendered = rendered.replace(&r.to_string(), &format!("reg{id}"));
            }
            canon.push_str(&rendered);
            canon.push(';');
        }
        canon.push('|');
        for (p, param) in self.imm_params.iter().enumerate() {
            canon.push_str(&format!("imm{p}@{:?};", param.guest_site));
        }
        canon
    }

    /// A stable 64-bit identity for quarantine bookkeeping.
    ///
    /// Hashes [`Rule::dedup_key`], so the key survives `RuleSet` clones,
    /// merges, and re-learning of the same rule — a tombstone laid down
    /// against one copy suppresses every equivalent copy.
    pub fn stable_key(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.dedup_key().hash(&mut h);
        h.finish()
    }

    /// A complete canonical rendering of the rule.
    ///
    /// Extends [`Rule::dedup_key`] with the host side: host registers
    /// render through their guest correspondence using the same
    /// first-occurrence numbering, and the host immediate sites, flag
    /// mask, and branch marker are appended. Two rules compare equal
    /// only when they are interchangeable, and the rendering is
    /// independent of the concrete registers either rule was learned
    /// with — which makes it usable as the final, order-independent
    /// tie-break of [`RuleSet::merge`].
    pub fn canonical_text(&self) -> String {
        // Number guest registers by first occurrence — first across the
        // guest template (like `dedup_key`), then across the guest
        // correspondences of host-template registers, so even a register
        // that only appears on the host side gets a deterministic id.
        let mut names: HashMap<ArmReg, usize> = HashMap::new();
        for g in &self.guest {
            for r in guest_regs_of(g) {
                let n = names.len();
                names.entry(r).or_insert(n);
            }
        }
        for h in &self.host {
            for r in host_regs_of(h) {
                if let Some(g) = self.host_reg_of.get(&r) {
                    let n = names.len();
                    names.entry(*g).or_insert(n);
                }
            }
        }
        let mut canon = self.dedup_key();
        canon.push('|');
        for h in &self.host {
            let mut rendered = h.to_string();
            for r in host_regs_of(h) {
                let id = self.host_reg_of.get(&r).and_then(|g| names.get(g));
                let sub = match id {
                    Some(id) => format!("hreg{id}"),
                    None => "hreg?".to_string(),
                };
                rendered = rendered.replace(&r.to_string(), &sub);
            }
            canon.push_str(&rendered);
            canon.push(';');
        }
        canon.push('|');
        for p in &self.imm_params {
            let _ = write!(canon, "{:?};", p.host_sites);
        }
        let _ = write!(canon, "|f{:x}b{}", self.unemulated_flags, u8::from(self.has_branch));
        canon
    }

    /// The total order [`RuleSet::merge`] uses to pick a winner among
    /// rules sharing a guest template: fewest host instructions first
    /// (paper §6.1), ties broken by the lexicographically least
    /// [`Rule::canonical_text`]. Deterministic and insertion-order
    /// independent.
    fn merge_rank(&self) -> (usize, String) {
        (self.host.len(), self.canonical_text())
    }
}

fn host_regs_of(i: &X86Instr) -> Vec<Gpr> {
    let mut v = i.uses();
    if let Some(d) = i.def() {
        v.push(d);
    }
    v.dedup();
    v
}

fn guest_regs_of(i: &ArmInstr) -> Vec<ArmReg> {
    let mut v = i.uses();
    if let Some(d) = i.def() {
        v.push(d);
    }
    v.dedup();
    v
}

fn match_addr(
    idx: usize,
    t: AddrMode,
    a: AddrMode,
    bind_reg: &mut impl FnMut(ArmReg, ArmReg) -> bool,
    bind_imm: &mut impl FnMut(usize, ImmSlot, i64, i64, &mut Vec<i64>) -> bool,
    imms: &mut Vec<i64>,
) -> bool {
    match (t, a) {
        (AddrMode::Imm(trn, toff), AddrMode::Imm(arn, aoff)) => {
            bind_reg(trn, arn) && bind_imm(idx, ImmSlot::MemOffset, toff as i64, aoff as i64, imms)
        }
        (AddrMode::Reg(trn, trm), AddrMode::Reg(arn, arm)) => {
            bind_reg(trn, arn) && bind_reg(trm, arm)
        }
        (AddrMode::RegShift(trn, trm, ts), AddrMode::RegShift(arn, arm, asx)) => {
            ts == asx && bind_reg(trn, arn) && bind_reg(trm, arm)
        }
        _ => false,
    }
}

/// The rule-sequence hash key: integer mean of guest opcode ids.
pub fn hash_key(seq: &[ArmInstr]) -> u32 {
    if seq.is_empty() {
        return 0;
    }
    let sum: u32 = seq.iter().map(|i| i.opcode_id()).sum();
    sum / seq.len() as u32
}

/// A parameterized operand rendered for display.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleOperand {
    /// A register parameter.
    Reg(u8),
    /// An immediate parameter.
    Imm(u8),
}

/// The rule store: a hash table keyed by the guest opcode mean (paper
/// §4), with per-key buckets of rules.
///
/// Buckets live in a [`BTreeMap`] so iteration order is a deterministic
/// function of the insertion sequence (and fully canonical after
/// [`RuleSet::merge`]), never of hash-seed randomness.
#[derive(Debug, Clone, Default)]
pub struct RuleSet {
    buckets: BTreeMap<u32, Vec<Rule>>,
    len: usize,
    dedup: HashMap<String, (u32, usize)>,
    /// Quarantined rules by [`Rule::stable_key`]. Tombstoned rules stay
    /// in their buckets (so [`RuleSet::len`] and learning statistics are
    /// unaffected) but are skipped by matching.
    tombstones: std::collections::HashSet<u64>,
    /// Ablation knob: when `true` (default via [`RuleSet::new`]) a
    /// duplicate guest template keeps the host sequence with fewer
    /// instructions (paper §6.1); when `false`, first-found wins.
    pub prefer_shorter: bool,
}

impl RuleSet {
    /// An empty rule set (shortest-host dedup policy).
    pub fn new() -> Self {
        RuleSet { prefer_shorter: true, ..RuleSet::default() }
    }

    /// An empty rule set with first-found dedup (the ablation baseline).
    pub fn new_first_found() -> Self {
        RuleSet { prefer_shorter: false, ..RuleSet::default() }
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert a rule, deduplicating by guest template. When two rules
    /// share a guest template the one with the *fewest host instructions*
    /// wins (paper §6.1: "we select the sequence with the smallest number
    /// of host instructions").
    ///
    /// Returns `true` if the set changed.
    pub fn insert(&mut self, rule: Rule) -> bool {
        let key = rule.dedup_key();
        let hkey = rule.hash_key();
        if let Some((bucket, idx)) = self.dedup.get(&key) {
            let existing = &mut self.buckets.get_mut(bucket).expect("bucket exists")[*idx];
            if self.prefer_shorter && rule.host.len() < existing.host.len() {
                *existing = rule;
                return true;
            }
            return false;
        }
        let bucket = self.buckets.entry(hkey).or_default();
        bucket.push(rule);
        self.dedup.insert(key, (hkey, bucket.len() - 1));
        self.len += 1;
        true
    }

    /// Quarantine a rule by stable key: the rule keeps its bucket slot
    /// but is skipped by [`RuleSet::candidates`], [`RuleSet::lookup`],
    /// and [`RuleSet::lookup_linear`] from now on. Returns `true` when
    /// the key was not already tombstoned.
    pub fn tombstone(&mut self, key: u64) -> bool {
        self.tombstones.insert(key)
    }

    /// Whether a stable key has been quarantined.
    pub fn is_tombstoned(&self, key: u64) -> bool {
        self.tombstones.contains(&key)
    }

    /// Number of quarantined rule keys.
    pub fn tombstoned_count(&self) -> usize {
        self.tombstones.len()
    }

    /// All quarantined stable keys, sorted (for deterministic
    /// serialization in `db`).
    pub fn tombstoned_keys(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self.tombstones.iter().copied().collect();
        keys.sort_unstable();
        keys
    }

    /// Replace the stored rule identified by stable key `key` with a
    /// repaired version, in place (hot publication after a successful
    /// counterexample-guided repair).
    ///
    /// The replacement must have the *same* stable key — i.e. the same
    /// guest template and parameter sites — so every index (hash bucket,
    /// dedup map, outstanding tombstones) stays valid. A repair only ever
    /// changes the host side, so this always holds for real repairs.
    /// Returns `false` (and leaves the set untouched) when the keys
    /// differ or no rule with that key is stored.
    pub fn replace(&mut self, key: u64, repaired: Rule) -> bool {
        if repaired.stable_key() != key {
            return false;
        }
        let dkey = repaired.dedup_key();
        let Some((bucket, idx)) = self.dedup.get(&dkey) else { return false };
        self.buckets.get_mut(bucket).expect("bucket exists")[*idx] = repaired;
        true
    }

    /// Lift a quarantine tombstone (after the repaired rule has been
    /// republished via [`RuleSet::replace`]). Returns `true` when the key
    /// was tombstoned.
    pub fn revive(&mut self, key: u64) -> bool {
        self.tombstones.remove(&key)
    }

    /// Find a rule by stable key (linear scan — quarantine and repair are
    /// cold paths). Tombstoned rules are found too: repair needs to read
    /// the rule it is about to fix.
    pub fn find_by_key(&self, key: u64) -> Option<&Rule> {
        self.iter().find(|r| r.stable_key() == key)
    }

    /// Whether matching may use this rule (not tombstoned). The
    /// empty-set fast path keeps the no-quarantine lookup cost at zero
    /// (no `dedup_key` rendering per candidate).
    fn is_active(&self, r: &Rule) -> bool {
        self.tombstones.is_empty() || !self.tombstones.contains(&r.stable_key())
    }

    /// All rules whose hash key matches `seq`'s and whose length equals
    /// `seq.len()` — the candidates for matching.
    pub fn candidates(&self, seq: &[ArmInstr]) -> impl Iterator<Item = &Rule> {
        let key = hash_key(seq);
        let n = seq.len();
        self.buckets
            .get(&key)
            .into_iter()
            .flatten()
            .filter(move |r| r.len() == n && self.is_active(r))
    }

    /// Find the first rule matching `seq`, with its binding.
    pub fn lookup(&self, seq: &[ArmInstr]) -> Option<(&Rule, Binding)> {
        for r in self.candidates(seq) {
            if let Some(b) = r.matches(seq) {
                return Some((r, b));
            }
        }
        None
    }

    /// Iterate over all rules.
    pub fn iter(&self) -> impl Iterator<Item = &Rule> {
        self.buckets.values().flatten()
    }

    /// Lookup by scanning every rule (no hash pre-filter) — the ablation
    /// baseline for the paper's opcode-mean hash scheme. Returns the
    /// match plus the number of rules probed.
    pub fn lookup_linear(&self, seq: &[ArmInstr]) -> (Option<(&Rule, Binding)>, usize) {
        let mut probes = 0;
        for r in self.iter() {
            probes += 1;
            if r.len() != seq.len() || !self.is_active(r) {
                continue;
            }
            if let Some(b) = r.matches(seq) {
                return (Some((r, b)), probes);
            }
        }
        (None, probes)
    }

    /// Merge another rule set into this one, in `other`'s iteration
    /// order. Collisions follow [`RuleSet::insert`]'s policy, so the
    /// result can depend on the merge order when host lengths tie —
    /// prefer [`RuleSet::merge`] for order-independent composition.
    pub fn extend_from(&mut self, other: &RuleSet) {
        for r in other.iter() {
            self.insert(r.clone());
        }
    }

    /// Merge another rule set into this one with an order-independent
    /// collision policy: on a shared guest template the rule with the
    /// fewest host instructions wins, ties broken by the
    /// lexicographically least [`Rule::canonical_text`]. Buckets are
    /// re-sorted into the same total order afterwards, so composing the
    /// same rule sets in *any* merge order yields byte-identical stores
    /// — contents and iteration (hence lookup) order alike. This is how
    /// the leave-one-out experiment sets are assembled from the twelve
    /// per-program sets without re-learning.
    pub fn merge(&mut self, other: &RuleSet) {
        for r in other.iter() {
            let key = r.dedup_key();
            if let Some((bucket, idx)) = self.dedup.get(&key) {
                let existing = &mut self.buckets.get_mut(bucket).expect("bucket exists")[*idx];
                if r.merge_rank() < existing.merge_rank() {
                    *existing = r.clone();
                }
            } else {
                let hkey = r.hash_key();
                let bucket = self.buckets.entry(hkey).or_default();
                bucket.push(r.clone());
                self.dedup.insert(key, (hkey, bucket.len() - 1));
                self.len += 1;
            }
        }
        // Quarantine is sticky across composition: a rule tombstoned in
        // either input stays quarantined in the union.
        self.tombstones.extend(&other.tombstones);
        self.normalize();
    }

    /// Sort every bucket by `(dedup_key, merge_rank)` and rebuild the
    /// dedup index, making iteration order canonical.
    fn normalize(&mut self) {
        self.dedup.clear();
        for (hkey, bucket) in &mut self.buckets {
            bucket.sort_by_cached_key(|r| {
                let (hlen, canon) = r.merge_rank();
                (r.dedup_key(), hlen, canon)
            });
            for (idx, r) in bucket.iter().enumerate() {
                self.dedup.insert(r.dedup_key(), (*hkey, idx));
            }
        }
    }

    /// Every rule's [`Rule::canonical_text`], sorted — a canonical dump
    /// for comparing rule-set contents irrespective of storage order.
    pub fn canonical_dump(&self) -> String {
        let mut keys: Vec<String> = self.iter().map(Rule::canonical_text).collect();
        keys.sort();
        keys.join("\n")
    }

    /// Histogram of rule lengths (for Figure 12-style reporting).
    pub fn length_histogram(&self) -> HashMap<usize, usize> {
        let mut h = HashMap::new();
        for r in self.iter() {
            *h.entry(r.len()).or_insert(0) += 1;
        }
        h
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "rule (len {}):", self.len())?;
        for g in &self.guest {
            writeln!(f, "  guest: {g}")?;
        }
        for h in &self.host {
            writeln!(f, "  host:  {h}")?;
        }
        if self.unemulated_flags != 0 {
            writeln!(f, "  unemulated flags: {:#06b}", self.unemulated_flags)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldbt_arm::DpOp;
    use ldbt_x86::AluOp;

    /// The paper's Figure 1 rule: `add r0,r0,r1; sub r0,r0,#imm` →
    /// `leal -imm(r0,r1), r0`.
    fn figure1_rule() -> Rule {
        Rule {
            guest: vec![
                ArmInstr::dp(DpOp::Add, ArmReg::R0, ArmReg::R0, Operand2::Reg(ArmReg::R1)),
                ArmInstr::dp(DpOp::Sub, ArmReg::R0, ArmReg::R0, Operand2::Imm(5)),
            ],
            host: vec![X86Instr::Lea {
                dst: Gpr::Edx,
                addr: X86Mem { base: Some(Gpr::Edx), index: Some((Gpr::Ecx, 1)), disp: -5 },
            }],
            host_reg_of: [(Gpr::Edx, ArmReg::R0), (Gpr::Ecx, ArmReg::R1)].into_iter().collect(),
            imm_params: vec![ImmParam {
                guest_site: (1, ImmSlot::Data),
                extra_guest_sites: vec![],
                template_value: 5,
                host_sites: vec![(0, ImmSlot::MemOffset, ImmRel::Neg)],
            }],
            unemulated_flags: 0,
            has_branch: false,
        }
    }

    #[test]
    fn figure1_matches_renamed_registers() {
        let rule = figure1_rule();
        let seq = [
            ArmInstr::dp(DpOp::Add, ArmReg::R4, ArmReg::R4, Operand2::Reg(ArmReg::R7)),
            ArmInstr::dp(DpOp::Sub, ArmReg::R4, ArmReg::R4, Operand2::Imm(12)),
        ];
        let b = rule.matches(&seq).expect("must match");
        assert_eq!(b.regs[&ArmReg::R0], ArmReg::R4);
        assert_eq!(b.regs[&ArmReg::R1], ArmReg::R7);
        assert_eq!(b.imms, vec![12]);
    }

    #[test]
    fn figure1_instantiates_with_bound_operands() {
        let rule = figure1_rule();
        let seq = [
            ArmInstr::dp(DpOp::Add, ArmReg::R4, ArmReg::R4, Operand2::Reg(ArmReg::R7)),
            ArmInstr::dp(DpOp::Sub, ArmReg::R4, ArmReg::R4, Operand2::Imm(12)),
        ];
        let b = rule.matches(&seq).unwrap();
        // DBT allocation: r4 → esi, r7 → eax.
        let host = rule.instantiate(&b, |g| match g {
            ArmReg::R4 => Gpr::Esi,
            ArmReg::R7 => Gpr::Eax,
            other => panic!("{other}"),
        });
        assert_eq!(host.len(), 1);
        assert_eq!(host[0].to_string(), "leal -12(%esi,%eax,1), %esi");
    }

    #[test]
    fn tombstoned_rule_is_skipped_by_matching() {
        let rule = figure1_rule();
        let seq = [
            ArmInstr::dp(DpOp::Add, ArmReg::R4, ArmReg::R4, Operand2::Reg(ArmReg::R7)),
            ArmInstr::dp(DpOp::Sub, ArmReg::R4, ArmReg::R4, Operand2::Imm(12)),
        ];
        let key = rule.stable_key();
        let mut set = RuleSet::new();
        set.insert(rule);
        assert!(set.lookup(&seq).is_some());
        assert!(set.tombstone(key), "first tombstone is new");
        assert!(!set.tombstone(key), "second tombstone is a no-op");
        assert!(set.is_tombstoned(key));
        assert_eq!(set.tombstoned_count(), 1);
        assert_eq!(set.len(), 1, "tombstoning does not remove the rule");
        assert!(set.lookup(&seq).is_none(), "matching skips quarantined rules");
        assert!(set.lookup_linear(&seq).0.is_none());
        // Quarantine survives order-independent merges.
        let mut merged = RuleSet::new();
        merged.merge(&set);
        assert!(merged.lookup(&seq).is_none());
    }

    #[test]
    fn mismatched_structure_rejected() {
        let rule = figure1_rule();
        // Different opcode.
        let seq = [
            ArmInstr::dp(DpOp::Sub, ArmReg::R4, ArmReg::R4, Operand2::Reg(ArmReg::R7)),
            ArmInstr::dp(DpOp::Sub, ArmReg::R4, ArmReg::R4, Operand2::Imm(12)),
        ];
        assert!(rule.matches(&seq).is_none());
        // Wrong length.
        assert!(rule.matches(&seq[..1]).is_none());
        // Inconsistent register renaming: template r0 must be one register.
        let seq = [
            ArmInstr::dp(DpOp::Add, ArmReg::R4, ArmReg::R4, Operand2::Reg(ArmReg::R7)),
            ArmInstr::dp(DpOp::Sub, ArmReg::R5, ArmReg::R5, Operand2::Imm(12)),
        ];
        assert!(rule.matches(&seq).is_none());
    }

    #[test]
    fn bijective_renaming_enforced() {
        // Template uses two distinct registers; actual code uses one.
        let rule = figure1_rule();
        let seq = [
            ArmInstr::dp(DpOp::Add, ArmReg::R4, ArmReg::R4, Operand2::Reg(ArmReg::R4)),
            ArmInstr::dp(DpOp::Sub, ArmReg::R4, ArmReg::R4, Operand2::Imm(12)),
        ];
        assert!(rule.matches(&seq).is_none(), "r0 and r1 cannot both bind r4");
    }

    #[test]
    fn unparameterized_immediates_must_match() {
        let mut rule = figure1_rule();
        rule.imm_params.clear(); // now #5 is structural
        let hit = [
            ArmInstr::dp(DpOp::Add, ArmReg::R0, ArmReg::R0, Operand2::Reg(ArmReg::R1)),
            ArmInstr::dp(DpOp::Sub, ArmReg::R0, ArmReg::R0, Operand2::Imm(5)),
        ];
        let miss = [
            ArmInstr::dp(DpOp::Add, ArmReg::R0, ArmReg::R0, Operand2::Reg(ArmReg::R1)),
            ArmInstr::dp(DpOp::Sub, ArmReg::R0, ArmReg::R0, Operand2::Imm(6)),
        ];
        assert!(rule.matches(&hit).is_some());
        assert!(rule.matches(&miss).is_none());
    }

    #[test]
    fn hash_key_is_opcode_mean() {
        let rule = figure1_rule();
        let add_id = ArmInstr::dp(DpOp::Add, ArmReg::R0, ArmReg::R0, Operand2::Imm(0)).opcode_id();
        let sub_id = ArmInstr::dp(DpOp::Sub, ArmReg::R0, ArmReg::R0, Operand2::Imm(0)).opcode_id();
        assert_eq!(rule.hash_key(), (add_id + sub_id) / 2);
    }

    #[test]
    fn ruleset_dedup_prefers_shorter_host() {
        let mut rs = RuleSet::new();
        let long = Rule {
            host: vec![
                X86Instr::alu_rr(AluOp::Add, Gpr::Edx, Gpr::Ecx),
                X86Instr::alu_ri(AluOp::Sub, Gpr::Edx, 5),
            ],
            ..figure1_rule()
        };
        assert!(rs.insert(long));
        assert_eq!(rs.len(), 1);
        // The one-instruction lea version replaces it.
        assert!(rs.insert(figure1_rule()));
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.iter().next().unwrap().host.len(), 1);
        // A worse rule does not.
        let worse = Rule {
            host: vec![
                X86Instr::alu_rr(AluOp::Add, Gpr::Edx, Gpr::Ecx),
                X86Instr::alu_ri(AluOp::Sub, Gpr::Edx, 5),
                X86Instr::mov_rr(Gpr::Edx, Gpr::Edx),
            ],
            ..figure1_rule()
        };
        assert!(!rs.insert(worse));
        assert_eq!(rs.iter().next().unwrap().host.len(), 1);
    }

    #[test]
    fn ruleset_lookup_by_hash() {
        let mut rs = RuleSet::new();
        rs.insert(figure1_rule());
        let seq = [
            ArmInstr::dp(DpOp::Add, ArmReg::R2, ArmReg::R2, Operand2::Reg(ArmReg::R3)),
            ArmInstr::dp(DpOp::Sub, ArmReg::R2, ArmReg::R2, Operand2::Imm(100)),
        ];
        let (rule, binding) = rs.lookup(&seq).expect("found");
        assert_eq!(rule.len(), 2);
        assert_eq!(binding.imms, vec![100]);
        // Non-matching sequence.
        let other = [ArmInstr::mov(ArmReg::R0, Operand2::Imm(1))];
        assert!(rs.lookup(&other).is_none());
    }

    #[test]
    fn dedup_key_canonicalizes_registers() {
        let a = figure1_rule();
        let mut b = figure1_rule();
        // Rename r0→r6, r1→r9 consistently in the guest template.
        b.guest = vec![
            ArmInstr::dp(DpOp::Add, ArmReg::R6, ArmReg::R6, Operand2::Reg(ArmReg::R9)),
            ArmInstr::dp(DpOp::Sub, ArmReg::R6, ArmReg::R6, Operand2::Imm(5)),
        ];
        assert_eq!(a.dedup_key(), b.dedup_key());
    }

    #[test]
    fn length_histogram() {
        let mut rs = RuleSet::new();
        rs.insert(figure1_rule());
        let h = rs.length_histogram();
        assert_eq!(h.get(&2), Some(&1));
    }

    #[test]
    fn branch_rule_matches_ignoring_offset() {
        let rule = Rule {
            guest: vec![
                ArmInstr::cmp(ArmReg::R2, Operand2::Reg(ArmReg::R3)),
                ArmInstr::B { offset: 7, cond: ldbt_arm::Cond::Ne },
            ],
            host: vec![
                X86Instr::alu_rr(AluOp::Cmp, Gpr::Ecx, Gpr::Edx),
                X86Instr::Jcc { cc: ldbt_x86::Cc::Ne, target: 0 },
            ],
            host_reg_of: [(Gpr::Ecx, ArmReg::R2), (Gpr::Edx, ArmReg::R3)].into_iter().collect(),
            imm_params: vec![],
            unemulated_flags: 0,
            has_branch: true,
        };
        let seq = [
            ArmInstr::cmp(ArmReg::R5, Operand2::Reg(ArmReg::R6)),
            ArmInstr::B { offset: -42, cond: ldbt_arm::Cond::Ne },
        ];
        assert!(rule.matches(&seq).is_some());
        let wrong_cond = [
            ArmInstr::cmp(ArmReg::R5, Operand2::Reg(ArmReg::R6)),
            ArmInstr::B { offset: -42, cond: ldbt_arm::Cond::Eq },
        ];
        assert!(rule.matches(&wrong_cond).is_none());
    }

    /// A figure1-template rule with a two-instruction host body.
    fn figure1_long_host() -> Rule {
        Rule {
            host: vec![
                X86Instr::alu_rr(AluOp::Add, Gpr::Edx, Gpr::Ecx),
                X86Instr::alu_ri(AluOp::Sub, Gpr::Edx, 5),
            ],
            imm_params: vec![ImmParam {
                guest_site: (1, ImmSlot::Data),
                extra_guest_sites: vec![],
                template_value: 5,
                host_sites: vec![(1, ImmSlot::Data, ImmRel::Id)],
            }],
            ..figure1_rule()
        }
    }

    /// An unrelated single-instruction rule so merges also carry
    /// non-colliding content.
    fn mov_rule() -> Rule {
        Rule {
            guest: vec![ArmInstr::mov(ArmReg::R3, Operand2::Reg(ArmReg::R4))],
            host: vec![X86Instr::mov_rr(Gpr::Esi, Gpr::Edi)],
            host_reg_of: [(Gpr::Esi, ArmReg::R3), (Gpr::Edi, ArmReg::R4)].into_iter().collect(),
            imm_params: vec![],
            unemulated_flags: 0,
            has_branch: false,
        }
    }

    fn set_of(rules: &[Rule]) -> RuleSet {
        let mut rs = RuleSet::new();
        for r in rules {
            rs.insert(r.clone());
        }
        rs
    }

    #[test]
    fn merge_is_order_independent() {
        let a = set_of(&[figure1_long_host(), mov_rule()]);
        let b = set_of(&[figure1_rule()]);
        let c = set_of(&[figure1_long_host()]);
        let orders: Vec<Vec<&RuleSet>> =
            vec![vec![&a, &b, &c], vec![&c, &b, &a], vec![&b, &a, &c], vec![&b, &c, &a]];
        let mut dumps = Vec::new();
        let mut iteration_orders = Vec::new();
        for order in &orders {
            let mut merged = RuleSet::new();
            for s in order {
                merged.merge(s);
            }
            assert_eq!(merged.len(), 2, "figure1 collision resolved + mov rule");
            // The one-instruction host must win every collision.
            let fig1 = merged
                .iter()
                .find(|r| r.dedup_key() == figure1_rule().dedup_key())
                .expect("figure1 template present");
            assert_eq!(fig1.host.len(), 1);
            dumps.push(merged.canonical_dump());
            iteration_orders.push(merged.iter().map(Rule::canonical_text).collect::<Vec<_>>());
        }
        // Contents and iteration order are identical across merge orders.
        assert!(dumps.windows(2).all(|w| w[0] == w[1]), "contents differ");
        assert!(iteration_orders.windows(2).all(|w| w[0] == w[1]), "order differs");
    }

    #[test]
    fn merge_tie_break_is_canonical_not_positional() {
        // Two equal-length hosts for the same guest template: the
        // lexicographically least canonical rendering must win no matter
        // which set is merged first.
        let lea = figure1_rule();
        let other = Rule {
            host: vec![X86Instr::alu_rr(AluOp::Add, Gpr::Edx, Gpr::Ecx)],
            imm_params: lea.imm_params.clone(),
            ..figure1_rule()
        };
        let expected = if lea.merge_rank() < other.merge_rank() { &lea } else { &other };
        for order in [[&lea, &other], [&other, &lea]] {
            let mut merged = RuleSet::new();
            for r in order {
                merged.merge(&set_of(std::slice::from_ref(r)));
            }
            assert_eq!(merged.len(), 1);
            assert_eq!(merged.iter().next().unwrap().canonical_text(), expected.canonical_text());
        }
    }

    #[test]
    fn canonical_text_is_register_independent() {
        let a = figure1_rule();
        // Rename guest r0→r6, r1→r9 and host edx→eax, ecx→ebx coherently.
        let b = Rule {
            guest: vec![
                ArmInstr::dp(DpOp::Add, ArmReg::R6, ArmReg::R6, Operand2::Reg(ArmReg::R9)),
                ArmInstr::dp(DpOp::Sub, ArmReg::R6, ArmReg::R6, Operand2::Imm(5)),
            ],
            host: vec![X86Instr::Lea {
                dst: Gpr::Eax,
                addr: X86Mem { base: Some(Gpr::Eax), index: Some((Gpr::Ebx, 1)), disp: -5 },
            }],
            host_reg_of: [(Gpr::Eax, ArmReg::R6), (Gpr::Ebx, ArmReg::R9)].into_iter().collect(),
            ..figure1_rule()
        };
        assert_eq!(a.canonical_text(), b.canonical_text());
        // A host-side difference dedup_key cannot see still shows up.
        let c =
            Rule { host: vec![X86Instr::alu_rr(AluOp::Add, Gpr::Edx, Gpr::Ecx)], ..figure1_rule() };
        assert_ne!(a.canonical_text(), c.canonical_text());
    }
}
