#![forbid(unsafe_code)]
//! Automatic learning of ARM→x86 translation rules (paper §2–§3).
//!
//! The pipeline mirrors the paper exactly:
//!
//! 1. **Extraction** ([`extract`]) — compile the same source for both
//!    ISAs with debug info, and pair up the guest/host instruction groups
//!    attributed to the same source line.
//! 2. **Preparation** ([`prepare`]) — discard snippets containing calls
//!    or indirect branches ("CI"), predicated instructions ("PI"), or
//!    spanning multiple blocks ("MB"); Table 1's first failure family.
//! 3. **Parameterization** ([`param`]) — heuristically build an *initial
//!    mapping* between guest and host operands: memory operands by IR
//!    variable name, live-in registers via normalized addresses /
//!    matching operations / bounded permutation search (≤ 5 tries),
//!    immediates by value with arithmetic/logical adaptor operations.
//! 4. **Verification** ([`verify`]) — symbolically execute both sides
//!    under the shared initial mapping and check defined registers (via a
//!    conflict-free *final mapping*), memory store logs, and branch
//!    conditions with the SAT-backed equivalence oracle.
//!
//! Verified pairs become parameterized [`rule::Rule`]s collected in a
//! [`rule::RuleSet`] (deduplicated, shortest-host-wins), ready for the
//! DBT in `ldbt-dbt`.

pub mod budget;
pub mod cache;
pub mod db;
pub mod extract;
pub mod fault;
pub mod par;
pub mod param;
pub mod pipeline;
pub mod prepare;
pub mod repair;
pub mod rule;
pub mod verify;

pub use budget::Budget;
pub use cache::{VerifyCache, VerifyOutcome};
pub use db::{DbError, RuleDb};
pub use fault::{corrupt_ruleset, FaultPlan, FaultSite};
pub use pipeline::{
    configured_threads, learn_rules, parse_threads, worker_metrics, LearnConfig, LearnReport,
    LearnStats, WORKER_METRIC_NAMES,
};
pub use repair::{repair, repair_budget, Counterexample, RepairFail, RepairReport};
pub use rule::{Rule, RuleOperand, RuleSet};
