//! A verification memo cache keyed by canonicalized snippet signatures.
//!
//! Verification dominates learning time (Table 1; the paper reports
//! ~95%), and real programs repeat the same guest/host snippet shapes
//! many times — both within one program (unrolled loops, repeated
//! idioms) and across the suite. The outcome of the whole
//! mapping-try loop (`prepare` → `initial_mappings` → `verify`) is a
//! pure function of the snippet pair's instruction content, so it can be
//! memoized: the first occurrence pays for verification, every repeat
//! replays the recorded outcome.
//!
//! The key is deliberately an *exact* rendering of both instruction
//! sequences (plus their memory-variable annotations and the mapping-try
//! limit), **not** a register-canonicalized one: a hit must reproduce
//! byte-for-byte what `verify` would compute for that pair, and the
//! learned [`Rule`] embeds the pair's actual registers and immediates.
//! Source location and function name are excluded — they influence none
//! of the pipeline stages.

use crate::extract::SnippetPair;
use crate::rule::Rule;
use crate::verify::VerifyFail;
use std::collections::HashMap;
use std::fmt::Write as _;

/// The memoized result of verifying one snippet signature: the learned
/// rule, or the last verification failure across its mapping tries
/// (Table 1 counts only the last failure, as in the paper).
#[derive(Debug, Clone)]
pub enum VerifyOutcome {
    /// Verification succeeded with this rule.
    Learned(Rule),
    /// Every candidate mapping failed; this was the last failure.
    Failed(VerifyFail),
}

/// The memo key for a snippet pair. See the module docs for why the
/// rendering is exact rather than register-canonicalized.
pub fn pair_signature(pair: &SnippetPair, max_tries: usize) -> String {
    let mut sig = String::with_capacity(64);
    let _ = write!(sig, "t{max_tries};");
    for (instr, var) in &pair.guest {
        let _ = write!(sig, "{instr}");
        if let Some(v) = var {
            let _ = write!(sig, "@{v}");
        }
        sig.push('\n');
    }
    sig.push('|');
    for (instr, var) in &pair.host {
        let _ = write!(sig, "{instr}");
        if let Some(v) = var {
            let _ = write!(sig, "@{v}");
        }
        sig.push('\n');
    }
    sig
}

/// FNV-1a hash of a signature, for trace events: a full signature is
/// multi-line and can run to kilobytes, so cache hit/miss events carry
/// this stable 64-bit digest instead. Collisions only smear trace
/// attribution; the cache itself always keys on the full string.
pub fn sig_hash(sig: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in sig.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The memo cache itself. One instance is shared across all programs of
/// an experiment run (see `ldbt-core::experiment::learn_all`), so
/// cross-program repeats also hit.
#[derive(Debug, Clone, Default)]
pub struct VerifyCache {
    map: HashMap<String, VerifyOutcome>,
}

impl VerifyCache {
    /// An empty cache.
    pub fn new() -> Self {
        VerifyCache::default()
    }

    /// Number of memoized signatures.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Look up a signature.
    pub fn get(&self, sig: &str) -> Option<&VerifyOutcome> {
        self.map.get(sig)
    }

    /// Record the outcome for a signature.
    pub fn insert(&mut self, sig: String, outcome: VerifyOutcome) {
        self.map.insert(sig, outcome);
    }

    /// Iterate over all memoized `(signature, outcome)` entries, in
    /// arbitrary (hash-map) order. `db` sorts by signature before
    /// serializing so the on-disk bytes are deterministic.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &VerifyOutcome)> {
        self.map.iter().map(|(k, v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldbt_arm::{ArmInstr, ArmReg, Operand2};
    use ldbt_isa::SourceLoc;
    use ldbt_x86::{Gpr, X86Instr};

    fn pair(loc: u32, imm: u32) -> SnippetPair {
        SnippetPair {
            loc: SourceLoc::line(loc),
            func: format!("f{loc}"),
            guest: vec![(ArmInstr::mov(ArmReg::R0, Operand2::Imm(imm)), None)],
            host: vec![(X86Instr::mov_imm(Gpr::Eax, imm as i32), Some("v".into()))],
        }
    }

    #[test]
    fn signature_ignores_location_but_not_content() {
        // Same instructions at different source locations: same key.
        assert_eq!(pair_signature(&pair(1, 7), 5), pair_signature(&pair(42, 7), 5));
        // Different immediate: different key.
        assert_ne!(pair_signature(&pair(1, 7), 5), pair_signature(&pair(1, 8), 5));
        // Different try limit: different key.
        assert_ne!(pair_signature(&pair(1, 7), 5), pair_signature(&pair(1, 7), 1));
    }

    #[test]
    fn signature_distinguishes_annotations() {
        let mut a = pair(1, 7);
        let b = a.clone();
        a.host[0].1 = None;
        assert_ne!(pair_signature(&a, 5), pair_signature(&b, 5));
    }

    #[test]
    fn sig_hash_is_stable_and_content_sensitive() {
        // FNV-1a reference values: hash of "" is the offset basis.
        assert_eq!(sig_hash(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(sig_hash("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(
            sig_hash(&pair_signature(&pair(1, 7), 5)),
            sig_hash(&pair_signature(&pair(42, 7), 5))
        );
        assert_ne!(
            sig_hash(&pair_signature(&pair(1, 7), 5)),
            sig_hash(&pair_signature(&pair(1, 8), 5))
        );
    }

    #[test]
    fn cache_round_trip() {
        let mut cache = VerifyCache::new();
        assert!(cache.is_empty());
        let sig = pair_signature(&pair(1, 7), 5);
        assert!(cache.get(&sig).is_none());
        cache.insert(sig.clone(), VerifyOutcome::Failed(VerifyFail::Other("test")));
        assert_eq!(cache.len(), 1);
        assert!(matches!(cache.get(&sig), Some(VerifyOutcome::Failed(VerifyFail::Other("test")))));
    }
}
