//! Snippet extraction: pairing guest and host instruction groups by
//! source line (paper §2, "Learning Scope").

use ldbt_arm::ArmInstr;
use ldbt_compiler::{CompiledInstr, CompiledProgram};
use ldbt_isa::{SourceLoc, SourceMap};
use ldbt_x86::X86Instr;
use std::collections::BTreeMap;

/// A guest/host snippet pair attributed to one source line.
#[derive(Debug, Clone)]
pub struct SnippetPair {
    /// The source line.
    pub loc: SourceLoc,
    /// The function both snippets came from.
    pub func: String,
    /// Guest instructions with their memory-variable annotations.
    pub guest: Vec<(ArmInstr, Option<String>)>,
    /// Host instructions with their memory-variable annotations.
    pub host: Vec<(X86Instr, Option<String>)>,
}

impl SnippetPair {
    /// Guest instructions without annotations.
    pub fn guest_instrs(&self) -> Vec<ArmInstr> {
        self.guest.iter().map(|(i, _)| *i).collect()
    }

    /// Host instructions without annotations.
    pub fn host_instrs(&self) -> Vec<X86Instr> {
        self.host.iter().map(|(i, _)| *i).collect()
    }
}

fn line_groups<I: Clone>(
    code: &[CompiledInstr<I>],
    ends_block: impl Fn(&I) -> bool,
) -> BTreeMap<SourceLoc, Vec<Vec<usize>>> {
    let mut map = SourceMap::new();
    for (i, c) in code.iter().enumerate() {
        if c.loc.is_known() {
            map.record(i, c.loc);
        }
    }
    let mut groups: BTreeMap<SourceLoc, Vec<Vec<usize>>> = BTreeMap::new();
    for (loc, range) in map.line_groups() {
        // Split at control-flow instructions: a candidate snippet is a
        // single-basic-block sequence (a branch may only end one), which
        // keeps loop-header `cmp+bcc` pairs separate from the loop-entry
        // jump the compiler tags with the same line.
        let mut cur: Vec<usize> = Vec::new();
        for i in range {
            cur.push(i);
            if ends_block(&code[i].instr) {
                groups.entry(loc).or_default().push(std::mem::take(&mut cur));
            }
        }
        if !cur.is_empty() {
            groups.entry(loc).or_default().push(cur);
        }
    }
    groups
}

/// Extract all snippet pairs from a guest and a host compilation of the
/// same source.
///
/// Functions are matched by name; within a function, the i-th contiguous
/// guest group of a line pairs with the i-th host group of the same line
/// (extra groups on either side are dropped — they only cost yield).
pub fn extract(
    guest: &CompiledProgram<ArmInstr>,
    host: &CompiledProgram<X86Instr>,
) -> Vec<SnippetPair> {
    extract_with_stats(guest, host).0
}

/// [`extract`] plus the number of groups dropped because the two sides
/// split a line into different numbers of single-block groups — counted
/// as "multiple blocks" preparation failures in Table 1.
pub fn extract_with_stats(
    guest: &CompiledProgram<ArmInstr>,
    host: &CompiledProgram<X86Instr>,
) -> (Vec<SnippetPair>, usize) {
    let mut dropped = 0usize;
    let mut out = Vec::new();
    for gf in &guest.funcs {
        let Some(hf) = host.func(&gf.name) else { continue };
        let ggroups = line_groups(&gf.code, |i: &ArmInstr| i.is_block_end());
        let hgroups = line_groups(&hf.code, |i: &X86Instr| {
            matches!(
                i,
                X86Instr::Jcc { .. }
                    | X86Instr::Jmp { .. }
                    | X86Instr::JmpInd { .. }
                    | X86Instr::Call { .. }
                    | X86Instr::Ret
                    | X86Instr::Halt
            )
        });
        for (loc, glists) in &ggroups {
            let Some(hlists) = hgroups.get(loc) else {
                dropped += glists.len();
                continue;
            };
            dropped += glists.len().abs_diff(hlists.len());
            for (glist, hlist) in glists.iter().zip(hlists) {
                let mut guest: Vec<(ArmInstr, Option<String>)> =
                    glist.iter().map(|&i| (gf.code[i].instr, gf.code[i].mem_var.clone())).collect();
                let mut host: Vec<(X86Instr, Option<String>)> =
                    hlist.iter().map(|&i| (hf.code[i].instr, hf.code[i].mem_var.clone())).collect();
                // A trailing *unconditional* direct jump is pure control
                // glue (the DBT re-resolves targets anyway): strip it from
                // both sides so loop-entry/step snippets stay learnable.
                if matches!(guest.last(), Some((ArmInstr::B { cond: ldbt_arm::Cond::Al, .. }, _))) {
                    guest.pop();
                }
                if matches!(host.last(), Some((X86Instr::Jmp { .. }, _))) {
                    host.pop();
                }
                if guest.is_empty() || host.is_empty() {
                    continue;
                }
                out.push(SnippetPair { loc: *loc, func: gf.name.clone(), guest, host });
            }
        }
    }
    (out, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldbt_compiler::{compile_arm, compile_x86, Options};

    fn pairs(src: &str) -> Vec<SnippetPair> {
        let g = compile_arm(src, &Options::o2()).unwrap();
        let h = compile_x86(src, &Options::o2()).unwrap();
        extract(&g, &h)
    }

    #[test]
    fn pairs_cover_each_line() {
        let src = "int f(int a, int b) {\n  int x = a + b;\n  x = x * 2;\n  return x;\n}";
        let ps = pairs(src);
        let lines: Vec<u32> = ps.iter().map(|p| p.loc.line).collect();
        assert!(lines.contains(&2), "{lines:?}");
        assert!(lines.contains(&3), "{lines:?}");
        assert!(lines.contains(&4), "{lines:?}");
        for p in &ps {
            assert!(!p.guest.is_empty());
            assert!(!p.host.is_empty());
            assert_eq!(p.func, "f");
        }
    }

    #[test]
    fn figure1_shape_pair_exists() {
        // `a + b - 1` on one line: guest add+sub vs host lea/add-sub.
        let src = "int f(int a, int b) {\n  return a + b - 1;\n}";
        let ps = pairs(src);
        let p = ps.iter().find(|p| p.loc.line == 2).expect("line 2 pair");
        assert!(p.guest.len() >= 2);
        assert!(!p.host.is_empty());
    }

    #[test]
    fn multiple_functions_matched_by_name() {
        let src = "int g(int x) { return x + 1; }\nint f(int y) { return y - 1; }";
        let ps = pairs(src);
        assert!(ps.iter().any(|p| p.func == "g"));
        assert!(ps.iter().any(|p| p.func == "f"));
    }

    #[test]
    fn loop_lines_can_produce_multiple_groups() {
        let src = "
int f(int n) {
  int s = 0;
  for (int i = 0; i < n; i += 1) { s += i; }
  return s;
}";
        let ps = pairs(src);
        // Line 4 (the for header) appears in at least one group.
        assert!(ps.iter().any(|p| p.loc.line == 4));
    }

    #[test]
    fn annotations_travel_with_instructions() {
        let src = "int total;\nint f(int x) {\n  total += x;\n  return total;\n}";
        let ps = pairs(src);
        let p = ps.iter().find(|p| p.loc.line == 3).unwrap();
        assert!(p.guest.iter().any(|(_, v)| v.as_deref() == Some("total")));
        assert!(p.host.iter().any(|(_, v)| v.as_deref() == Some("total")));
    }
}
