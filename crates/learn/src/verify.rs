//! Verification of semantic equivalence via symbolic execution (paper
//! §3.3), and construction of the final [`Rule`].
//!
//! Both instruction sequences are executed symbolically from a shared
//! [`TermPool`]: operands paired by the initial mapping receive the
//! *same* symbolic variable, so equivalent computations usually converge
//! to syntactically identical terms; residual questions go to the
//! SAT-backed [`ldbt_smt::check_equiv`] oracle (the STP stand-in). The three checks
//! are exactly the paper's: defined **registers** under a conflict-free
//! final mapping, **memory** store logs compared at their recorded
//! symbolic addresses, and final **branch conditions**.
//!
//! One extension over the paper (documented in DESIGN.md): when the guest
//! sequence defines a register the host sequence has no counterpart for
//! (typically an address-materialization scratch), we *synthesize* an
//! equivalent host instruction (`mov $imm` / `mov reg` / `lea`) instead
//! of rejecting — the synthesized instruction is verified like any other
//! host code because it is built directly from the guest register's final
//! symbolic value.

use crate::budget::{Budget, REASON_SOLVER_BUDGET, REASON_SYMEXEC_FUEL, REASON_TERM_CAP};
use crate::extract::SnippetPair;
use crate::param::InitialMapping;
use crate::rule::{ImmRel, ImmSlot, Rule};
use ldbt_arm::ArmReg;
use ldbt_obs::trace::{self, Scope, Val};
use ldbt_smt::term::Term;
use ldbt_smt::{check_equiv_budget, EquivResult, TermId, TermPool};
use ldbt_symexec::{
    exec_arm_seq_fuel, exec_x86_seq_fuel, ImmRole, MemOracle, SymArmState, SymHazard, SymX86State,
};
use ldbt_x86::{Gpr, X86Instr, X86Mem};
use std::collections::{HashMap, HashSet};

/// Why verification failed (Table 1's "#F in Verification").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VerifyFail {
    /// Inequivalent registers / no conflict-free final mapping ("Rg").
    Registers,
    /// Inequivalent memory stores ("Mm").
    Memory,
    /// Inequivalent branch conditions ("Br").
    Branch,
    /// Symbolic-execution hazards, budget exhaustion, … ("Other"),
    /// carrying the recorded reason for diagnostics.
    Other(&'static str),
}

/// The `Other` reason for a symbolic-execution hazard.
fn hazard_reason(h: SymHazard) -> &'static str {
    match h {
        SymHazard::MayAlias => "symexec: possible aliasing",
        SymHazard::MixedWidth => "symexec: mixed-width access",
        SymHazard::Unsupported(what) => what,
        SymHazard::MidBlockBranch => "symexec: mid-block branch",
        SymHazard::OutOfFuel => REASON_SYMEXEC_FUEL,
    }
}

/// Record a budget-exhaustion site in the learn trace (no-op when
/// tracing is off). Emitted where the `REASON_*` failures originate so
/// a trace shows *which* resource ran out, not just the final tally.
fn trace_budget(reason: &'static str) {
    trace::emit(Scope::Learn, "budget_exhausted", &[("reason", Val::S(reason))]);
}

/// Map a symbolic-execution hazard to its failure, tracing fuel
/// exhaustion (the only budget-driven hazard).
fn hazard_fail(h: SymHazard) -> VerifyFail {
    let reason = hazard_reason(h);
    if reason == REASON_SYMEXEC_FUEL {
        trace_budget(reason);
    }
    VerifyFail::Other(reason)
}

fn slot_of(role: ImmRole) -> ImmSlot {
    match role {
        ImmRole::Data => ImmSlot::Data,
        ImmRole::MemOffset => ImmSlot::MemOffset,
    }
}

/// Verify one snippet pair under one initial mapping; on success return
/// the learned rule.
///
/// # Errors
///
/// Returns the Table 1 verification-failure category.
pub fn verify(pair: &SnippetPair, mapping: &InitialMapping) -> Result<Rule, VerifyFail> {
    verify_in(&mut TermPool::new(), pair, mapping)
}

/// [`verify`] with a caller-provided term pool.
///
/// The pool must be fresh or [`TermPool::reset`]. Long-running callers
/// (the learning pipeline issues one query per candidate mapping) reset
/// and reuse one pool per worker instead of reallocating the hash-cons
/// tables for every query; the result is identical because `reset`
/// clears all terms and symbols.
///
/// # Errors
///
/// Returns the Table 1 verification-failure category.
pub fn verify_in(
    pool: &mut TermPool,
    pair: &SnippetPair,
    mapping: &InitialMapping,
) -> Result<Rule, VerifyFail> {
    verify_in_budgeted(pool, pair, mapping, &Budget::default())
}

/// [`verify_in`] under explicit resource budgets.
///
/// Exhausting any budget (symexec step fuel, term-pool cap, SAT conflict
/// budget) fails the query with [`VerifyFail::Other`] carrying the
/// exhausted resource as its reason — verification of one pair is always
/// bounded work.
///
/// # Errors
///
/// Returns the Table 1 verification-failure category.
pub fn verify_in_budgeted(
    pool: &mut TermPool,
    pair: &SnippetPair,
    mapping: &InitialMapping,
    budget: &Budget,
) -> Result<Rule, VerifyFail> {
    pool.set_soft_cap(budget.term_pool_cap);
    let guest_seq = pair.guest_instrs();
    let host_seq = pair.host_instrs();
    let mut oracle = MemOracle::new();

    // Shared input symbols for mapped registers.
    let mut guest_init = SymArmState::fresh(pool, "g_");
    let mut host_init = SymX86State::fresh(pool, "h_");
    let mut sym_host_reg: HashMap<TermId, Gpr> = HashMap::new();
    for (k, (g, h)) in mapping.reg_pairs.iter().enumerate() {
        let v = pool.var(&format!("p{k}"), 32);
        guest_init.set_reg(*g, v);
        host_init.set_reg(*h, v);
        sym_host_reg.insert(v, *h);
    }

    // Immediate parameter symbols.
    let imm_vars: Vec<TermId> =
        (0..mapping.imm_params.len()).map(|k| pool.var(&format!("imm{k}"), 32)).collect();
    let params = mapping.imm_params.clone();
    let imm_vars_g = imm_vars.clone();
    let mut guest_binder = {
        let params = params.clone();
        move |pool: &mut TermPool, idx: usize, role: ImmRole, value: i64| -> TermId {
            let slot = slot_of(role);
            for (k, p) in params.iter().enumerate() {
                if p.guest_site == (idx, slot) || p.extra_guest_sites.contains(&(idx, slot)) {
                    return imm_vars_g[k];
                }
            }
            pool.constant(value as u64, 32)
        }
    };
    let imm_vars_h = imm_vars.clone();
    let mut host_binder = {
        let params = params.clone();
        move |pool: &mut TermPool, idx: usize, role: ImmRole, value: i64| -> TermId {
            let slot = slot_of(role);
            for (k, p) in params.iter().enumerate() {
                for (hi, hslot, rel) in &p.host_sites {
                    if (*hi, *hslot) == (idx, slot) {
                        return match rel {
                            ImmRel::Id => imm_vars_h[k],
                            ImmRel::Neg => pool.neg(imm_vars_h[k]),
                            ImmRel::Not => pool.not_(imm_vars_h[k]),
                        };
                    }
                }
            }
            pool.constant(value as u64, 32)
        }
    };

    let fuel = budget.symexec_steps;
    let gout =
        exec_arm_seq_fuel(pool, &guest_seq, guest_init, &mut oracle, &mut guest_binder, fuel)
            .map_err(hazard_fail)?;
    let hout = exec_x86_seq_fuel(pool, &host_seq, host_init, &mut oracle, &mut host_binder, fuel)
        .map_err(hazard_fail)?;
    if pool.over_cap() {
        trace_budget(REASON_TERM_CAP);
        return Err(VerifyFail::Other(REASON_TERM_CAP));
    }

    let conflicts = budget.solver_conflicts;
    let equiv = move |pool: &mut TermPool, a: TermId, b: TermId| -> Result<bool, VerifyFail> {
        if pool.over_cap() {
            trace_budget(REASON_TERM_CAP);
            return Err(VerifyFail::Other(REASON_TERM_CAP));
        }
        match check_equiv_budget(pool, a, b, conflicts) {
            EquivResult::Proved => Ok(true),
            EquivResult::Refuted(_) => Ok(false),
            EquivResult::Unknown => {
                trace_budget(REASON_SOLVER_BUDGET);
                Err(VerifyFail::Other(REASON_SOLVER_BUDGET))
            }
        }
    };

    // --- Branch conditions. ---
    match (gout.branch_cond, hout.branch_cond) {
        (None, None) => {}
        (Some(g), Some(h)) => {
            if !equiv(pool, g, h)? {
                return Err(VerifyFail::Branch);
            }
        }
        _ => return Err(VerifyFail::Branch),
    }

    // --- Memory stores. ---
    if gout.stores.len() != hout.stores.len() {
        return Err(VerifyFail::Memory);
    }
    for (gs, hs) in gout.stores.iter().zip(&hout.stores) {
        if gs.width != hs.width {
            return Err(VerifyFail::Memory);
        }
        if !equiv(pool, gs.addr, hs.addr)? {
            return Err(VerifyFail::Memory);
        }
        if !equiv(pool, gs.value, hs.value)? {
            return Err(VerifyFail::Memory);
        }
    }

    // --- Registers: build the final mapping. ---
    let mut final_map: Vec<(ArmReg, Gpr)> = Vec::new();
    let mut claimed_host: HashSet<Gpr> = HashSet::new();
    let mut unmatched_guest: Vec<ArmReg> = Vec::new();
    for g in &gout.defined_regs {
        let tg = gout.state.reg(*g);
        // Conflict rule: a register already paired in the initial mapping
        // must keep the same partner.
        let preferred = mapping.host_of(*g);
        let mut matched = None;
        if let Some(h0) = preferred {
            // Conflict rule: an initially-mapped register must keep its
            // partner in the final mapping.
            let th0 = hout.state.reg(h0);
            if !claimed_host.contains(&h0) && equiv(pool, tg, th0)? {
                matched = Some(h0);
            } else if hout.defined_regs.contains(&h0) {
                // The partner was redefined to something inequivalent.
                return Err(VerifyFail::Registers);
            }
            // Otherwise: partner untouched by the host; fall through to
            // the repair path, which synthesizes the update.
        } else {
            for h in &hout.defined_regs {
                if claimed_host.contains(h) {
                    continue;
                }
                if equiv(pool, tg, hout.state.reg(*h))? {
                    matched = Some(*h);
                    break;
                }
            }
        }
        match matched {
            Some(h) => {
                claimed_host.insert(h);
                final_map.push((*g, h));
            }
            None => unmatched_guest.push(*g),
        }
    }
    // Host defs that emulate no guest def clobber state → reject.
    for h in &hout.defined_regs {
        if claimed_host.contains(h) {
            continue;
        }
        // Exception: the host redefined an initially-mapped register to
        // exactly its guest partner's (unchanged or changed) final value —
        // already handled above; anything else is a stray write.
        let partner = mapping.reg_pairs.iter().find(|(_, hh)| hh == h).map(|(g, _)| *g);
        match partner {
            Some(g) => {
                if !equiv(pool, gout.state.reg(g), hout.state.reg(*h))? {
                    return Err(VerifyFail::Registers);
                }
                claimed_host.insert(*h);
                if !final_map.iter().any(|(gg, _)| *gg == g) {
                    final_map.push((g, *h));
                }
            }
            None => return Err(VerifyFail::Registers),
        }
    }

    // --- Repair: synthesize host instructions for unmatched guest defs. ---
    let mut host_template = host_seq.clone();
    let mut extra_pairs: Vec<(ArmReg, Gpr)> = Vec::new();
    if !unmatched_guest.is_empty() {
        let mut used: HashSet<Gpr> = host_template
            .iter()
            .flat_map(|i| {
                let mut v = i.uses();
                if let Some(d) = i.def() {
                    v.push(d);
                }
                v
            })
            .collect();
        used.insert(Gpr::Esp);
        for g in &unmatched_guest {
            let tg = gout.state.reg(*g);
            let Some(synth) = synthesize(pool, tg, &sym_host_reg) else {
                return Err(VerifyFail::Registers);
            };
            let Some(fresh) = Gpr::ALL.iter().find(|r| !used.contains(r)).copied() else {
                return Err(VerifyFail::Registers);
            };
            used.insert(fresh);
            host_template.push(synth.into_instr(fresh));
            extra_pairs.push((*g, fresh));
        }
    }

    // --- Flag emulation mask. ---
    let mut emulated: u8 = 0;
    // Guest N↔host SF, Z↔ZF, V↔OF, C↔¬CF (compare polarity).
    let pairs = [
        (0b1000u8, gout.state.flags.n, hout.state.flags.n, false),
        (0b0100, gout.state.flags.z, hout.state.flags.z, false),
        (0b0010, gout.state.flags.c, hout.state.flags.c, true),
        (0b0001, gout.state.flags.v, hout.state.flags.v, false),
    ];
    let hmask_written = hout.flags_defined; // CF=1, ZF=2, SF=4, OF=8
    let host_bit = |gbit: u8| match gbit {
        0b1000 => 0b0100u8, // N ↔ SF
        0b0100 => 0b0010,   // Z ↔ ZF
        0b0010 => 0b0001,   // C ↔ CF
        _ => 0b1000,        // V ↔ OF
    };
    for (gbit, gterm, hterm, invert) in pairs {
        if gout.flags_defined & gbit == 0 {
            continue;
        }
        if hmask_written & host_bit(gbit) == 0 {
            continue; // host never writes it → unemulated
        }
        let h = if invert { pool.not_(hterm) } else { hterm };
        if equiv(pool, gterm, h)? {
            emulated |= gbit;
        }
    }
    let unemulated_flags = gout.flags_defined & !emulated;

    // --- Assemble the rule. ---
    let mut host_reg_of: HashMap<Gpr, ArmReg> = HashMap::new();
    for (g, h) in mapping.reg_pairs.iter().chain(&final_map).chain(&extra_pairs) {
        if let Some(prev) = host_reg_of.get(h) {
            if prev != g {
                return Err(VerifyFail::Registers);
            }
        }
        host_reg_of.insert(*h, *g);
    }
    // Every host register used by the template must have a guest
    // correspondence, or the rule cannot be instantiated.
    for i in &host_template {
        let mut regs = i.uses();
        if let Some(d) = i.def() {
            regs.push(d);
        }
        for r in regs {
            if !host_reg_of.contains_key(&r) {
                return Err(VerifyFail::Registers);
            }
        }
    }

    Ok(Rule {
        guest: guest_seq,
        host: host_template,
        host_reg_of,
        imm_params: mapping.imm_params.clone(),
        unemulated_flags,
        has_branch: gout.branch_cond.is_some(),
    })
}

/// A synthesizable host expression shape.
enum Synth {
    Const(i32),
    Copy(Gpr),
    Lea(X86Mem),
}

impl Synth {
    fn into_instr(self, dst: Gpr) -> X86Instr {
        match self {
            Synth::Const(c) => X86Instr::mov_imm(dst, c),
            Synth::Copy(src) => X86Instr::mov_rr(dst, src),
            Synth::Lea(m) => X86Instr::Lea { dst, addr: m },
        }
    }
}

/// Try to express a final guest-register value as a single host
/// instruction over mapped input registers.
fn synthesize(pool: &TermPool, term: TermId, sym_host: &HashMap<TermId, Gpr>) -> Option<Synth> {
    match *pool.term(term) {
        Term::Const { value, .. } => Some(Synth::Const(value as i32)),
        Term::Var { .. } => sym_host.get(&term).map(|h| Synth::Copy(*h)),
        _ => {
            // Flatten an addition chain into base + index*scale + disp.
            let mut base: Option<Gpr> = None;
            let mut index: Option<(Gpr, u8)> = None;
            let mut disp: i64 = 0;
            let mut stack = vec![term];
            while let Some(t) = stack.pop() {
                match *pool.term(t) {
                    Term::Binary { op: ldbt_smt::term::BinOp::Add, a, b } => {
                        stack.push(a);
                        stack.push(b);
                    }
                    Term::Const { value, .. } => disp = disp.wrapping_add(value as i32 as i64),
                    Term::Var { .. } => {
                        let h = *sym_host.get(&t)?;
                        if base.is_none() {
                            base = Some(h);
                        } else if index.is_none() {
                            index = Some((h, 1));
                        } else {
                            return None;
                        }
                    }
                    Term::Binary { op: ldbt_smt::term::BinOp::Shl, a, b } => {
                        let Term::Const { value: k, .. } = *pool.term(b) else { return None };
                        if k > 3 || index.is_some() {
                            return None;
                        }
                        let h = *sym_host.get(&a)?;
                        index = Some((h, 1u8 << k));
                    }
                    _ => return None,
                }
            }
            let disp = disp as i32;
            if base.is_none() && index.is_none() {
                return Some(Synth::Const(disp));
            }
            Some(Synth::Lea(X86Mem { base, index, disp }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::initial_mappings;
    use ldbt_arm::{AddrMode, ArmInstr, Cond, DpOp, Operand2};
    use ldbt_isa::SourceLoc;
    use ldbt_x86::{AluOp, Cc, Operand, UnOp};

    fn mkpair(
        guest: Vec<(ArmInstr, Option<&str>)>,
        host: Vec<(X86Instr, Option<&str>)>,
    ) -> SnippetPair {
        SnippetPair {
            loc: SourceLoc::line(1),
            func: "f".into(),
            guest: guest.into_iter().map(|(g, v)| (g, v.map(str::to_string))).collect(),
            host: host.into_iter().map(|(h, v)| (h, v.map(str::to_string))).collect(),
        }
    }

    fn learn_one(pair: &SnippetPair) -> Result<Rule, VerifyFail> {
        let mappings = initial_mappings(pair).map_err(|_| VerifyFail::Other("no mapping"))?;
        let mut last = Err(VerifyFail::Other("no mapping"));
        for m in &mappings {
            last = verify(pair, m);
            if last.is_ok() {
                return last;
            }
        }
        last
    }

    #[test]
    fn figure1_rule_learned() {
        // add r1,r1,r0; sub r1,r1,#1  vs  leal -1(%edx,%eax,1), %edx.
        let pair = mkpair(
            vec![
                (ArmInstr::dp(DpOp::Add, ArmReg::R1, ArmReg::R1, Operand2::Reg(ArmReg::R0)), None),
                (ArmInstr::dp(DpOp::Sub, ArmReg::R1, ArmReg::R1, Operand2::Imm(1)), None),
            ],
            vec![(
                X86Instr::Lea {
                    dst: Gpr::Edx,
                    addr: X86Mem { base: Some(Gpr::Edx), index: Some((Gpr::Eax, 1)), disp: -1 },
                },
                None,
            )],
        );
        let rule = learn_one(&pair).expect("figure 1 rule verifies");
        assert_eq!(rule.len(), 2);
        assert_eq!(rule.host.len(), 1);
        assert!(!rule.has_branch);
        assert_eq!(rule.unemulated_flags, 0, "no guest flags written");
        // It must now match renamed code.
        let seq = [
            ArmInstr::dp(DpOp::Add, ArmReg::R5, ArmReg::R5, Operand2::Reg(ArmReg::R9)),
            ArmInstr::dp(DpOp::Sub, ArmReg::R5, ArmReg::R5, Operand2::Imm(77)),
        ];
        let b = rule.matches(&seq).expect("parameterized rule generalizes");
        assert_eq!(b.imms, vec![77]);
    }

    #[test]
    fn wrong_host_code_rejected() {
        // Host adds instead of subtracting the immediate.
        let pair = mkpair(
            vec![
                (ArmInstr::dp(DpOp::Add, ArmReg::R1, ArmReg::R1, Operand2::Reg(ArmReg::R0)), None),
                (ArmInstr::dp(DpOp::Sub, ArmReg::R1, ArmReg::R1, Operand2::Imm(3)), None),
            ],
            vec![(
                X86Instr::Lea {
                    dst: Gpr::Edx,
                    addr: X86Mem { base: Some(Gpr::Edx), index: Some((Gpr::Eax, 1)), disp: 3 },
                },
                None,
            )],
        );
        // The immediate 3 pairs with host 3 via Id — but then the host
        // *adds* it. Verification must refute.
        assert_eq!(learn_one(&pair).unwrap_err(), VerifyFail::Registers);
    }

    #[test]
    fn cmp_branch_rule_learned() {
        let pair = mkpair(
            vec![
                (ArmInstr::cmp(ArmReg::R2, Operand2::Reg(ArmReg::R3)), None),
                (ArmInstr::B { offset: 5, cond: Cond::Ne }, None),
            ],
            vec![
                (X86Instr::alu_rr(AluOp::Cmp, Gpr::Ecx, Gpr::Ebx), None),
                (X86Instr::Jcc { cc: Cc::Ne, target: 0 }, None),
            ],
        );
        let rule = learn_one(&pair).expect("cmp+bne rule");
        assert!(rule.has_branch);
    }

    #[test]
    fn branch_condition_mismatch_rejected() {
        let pair = mkpair(
            vec![
                (ArmInstr::cmp(ArmReg::R2, Operand2::Reg(ArmReg::R3)), None),
                (ArmInstr::B { offset: 5, cond: Cond::Ne }, None),
            ],
            vec![
                (X86Instr::alu_rr(AluOp::Cmp, Gpr::Ecx, Gpr::Ebx), None),
                (X86Instr::Jcc { cc: Cc::E, target: 0 }, None),
            ],
        );
        assert_eq!(learn_one(&pair).unwrap_err(), VerifyFail::Branch);
    }

    #[test]
    fn signed_unsigned_branch_mismatch_rejected() {
        // ARM `blt` (signed) vs x86 `jb` (unsigned) — a classic subtle bug.
        let pair = mkpair(
            vec![
                (ArmInstr::cmp(ArmReg::R2, Operand2::Reg(ArmReg::R3)), None),
                (ArmInstr::B { offset: 5, cond: Cond::Lt }, None),
            ],
            vec![
                (X86Instr::alu_rr(AluOp::Cmp, Gpr::Ecx, Gpr::Ebx), None),
                (X86Instr::Jcc { cc: Cc::B, target: 0 }, None),
            ],
        );
        assert_eq!(learn_one(&pair).unwrap_err(), VerifyFail::Branch);
    }

    #[test]
    fn store_rule_with_offset_parameter() {
        // Figure 4(a): str r1, [r6] vs movl %eax, 0x34(%esi).
        let pair = mkpair(
            vec![(ArmInstr::str(ArmReg::R1, AddrMode::Imm(ArmReg::R6, 0)), Some("s"))],
            vec![(
                X86Instr::Mov {
                    dst: Operand::Mem(X86Mem::base_disp(Gpr::Esi, 0x34)),
                    src: Operand::Reg(Gpr::Eax),
                },
                Some("s"),
            )],
        );
        let rule = learn_one(&pair).expect("store rule");
        // Applying to a different offset must propagate it to the host.
        let seq = [ArmInstr::str(ArmReg::R3, AddrMode::Imm(ArmReg::R8, 20))];
        let b = rule.matches(&seq).unwrap();
        let host = rule.instantiate(&b, |g| match g {
            ArmReg::R3 => Gpr::Ecx,
            ArmReg::R8 => Gpr::Edi,
            other => panic!("{other}"),
        });
        assert_eq!(host[0].to_string(), "movl %ecx, 20(%edi)");
    }

    #[test]
    fn store_value_mismatch_rejected() {
        let pair = mkpair(
            vec![(ArmInstr::str(ArmReg::R1, AddrMode::Imm(ArmReg::R6, 0)), Some("s"))],
            vec![
                // Host stores value+1 — wrong.
                (X86Instr::Lea { dst: Gpr::Eax, addr: X86Mem::base_disp(Gpr::Eax, 1) }, None),
                (
                    X86Instr::Mov {
                        dst: Operand::Mem(X86Mem::base(Gpr::Esi)),
                        src: Operand::Reg(Gpr::Eax),
                    },
                    Some("s"),
                ),
            ],
        );
        assert_eq!(learn_one(&pair).unwrap_err(), VerifyFail::Memory);
    }

    #[test]
    fn movzbl_and255_rule() {
        // Figure 3(b) core: and r0, r0, #255 vs movzbl %al, %eax.
        let pair = mkpair(
            vec![(ArmInstr::dp(DpOp::And, ArmReg::R0, ArmReg::R0, Operand2::Imm(255)), None)],
            vec![(
                X86Instr::Movx {
                    sign: false,
                    width: ldbt_isa::Width::W8,
                    dst: Gpr::Eax,
                    src: Operand::Reg(Gpr::Eax),
                },
                None,
            )],
        );
        let rule = learn_one(&pair).expect("movzbl rule");
        // 255 must stay *concrete*: the rule must not match `and #254`.
        let near_miss = [ArmInstr::dp(DpOp::And, ArmReg::R0, ArmReg::R0, Operand2::Imm(254))];
        assert!(rule.matches(&near_miss).is_none());
    }

    #[test]
    fn adds_incl_carry_unemulated() {
        // Paper §5: adds reg,reg,#1 vs incl — incl does not update CF.
        let pair = mkpair(
            vec![(ArmInstr::dps(DpOp::Add, ArmReg::R0, ArmReg::R0, Operand2::Imm(1)), None)],
            vec![(X86Instr::Un { op: UnOp::Inc, dst: Operand::Reg(Gpr::Eax) }, None)],
        );
        let rule = learn_one(&pair).expect("adds/incl rule with flag caveat");
        assert_eq!(rule.unemulated_flags, 0b0010, "exactly C unemulated (N/Z/V map)");
    }

    #[test]
    fn subs_flags_emulated_by_subl() {
        let pair = mkpair(
            vec![(ArmInstr::dps(DpOp::Sub, ArmReg::R0, ArmReg::R0, Operand2::Imm(1)), None)],
            vec![(X86Instr::alu_ri(AluOp::Sub, Gpr::Eax, 1), None)],
        );
        let rule = learn_one(&pair).expect("subs/subl");
        assert_eq!(rule.unemulated_flags, 0, "N,Z,V map directly; C maps inverted");
    }

    #[test]
    fn scratch_materialization_repaired() {
        // Guest materializes a constant into a scratch register the host
        // never writes; the verifier synthesizes `movl $5, fresh`.
        let pair = mkpair(
            vec![
                (ArmInstr::mov(ArmReg::R12, Operand2::Imm(5)), None),
                (ArmInstr::dp(DpOp::Add, ArmReg::R0, ArmReg::R0, Operand2::Reg(ArmReg::R1)), None),
            ],
            vec![(X86Instr::alu_rr(AluOp::Add, Gpr::Eax, Gpr::Ecx), None)],
        );
        let rule = learn_one(&pair).expect("repaired rule");
        assert_eq!(rule.host.len(), 2, "synthesized mov appended");
        assert!(rule.host.iter().any(|h| h.to_string().starts_with("movl $5")));
    }

    #[test]
    fn synthesize_shapes() {
        let mut pool = TermPool::new();
        let x = pool.var("x", 32);
        let map: HashMap<TermId, Gpr> = [(x, Gpr::Ecx)].into_iter().collect();
        let c = pool.constant(7, 32);
        assert!(matches!(synthesize(&pool, c, &map), Some(Synth::Const(7))));
        assert!(matches!(synthesize(&pool, x, &map), Some(Synth::Copy(Gpr::Ecx))));
        let two = pool.constant(2, 32);
        let sh = pool.shl(x, two);
        let c5 = pool.constant(5, 32);
        let t = pool.add(sh, c5);
        match synthesize(&pool, t, &map) {
            Some(Synth::Lea(m)) => {
                assert_eq!(m.index, Some((Gpr::Ecx, 4)));
                assert_eq!(m.disp, 5);
            }
            _ => panic!("expected lea"),
        }
        // Unmapped variable → None.
        let y = pool.var("y", 32);
        assert!(synthesize(&pool, y, &map).is_none());
    }

    /// The figure-1 pair plus its best initial mapping, for budget tests.
    fn figure1_pair_and_mapping() -> (SnippetPair, InitialMapping) {
        let pair = mkpair(
            vec![
                (ArmInstr::dp(DpOp::Add, ArmReg::R1, ArmReg::R1, Operand2::Reg(ArmReg::R0)), None),
                (ArmInstr::dp(DpOp::Sub, ArmReg::R1, ArmReg::R1, Operand2::Imm(1)), None),
            ],
            vec![(
                X86Instr::Lea {
                    dst: Gpr::Edx,
                    addr: X86Mem { base: Some(Gpr::Edx), index: Some((Gpr::Eax, 1)), disp: -1 },
                },
                None,
            )],
        );
        let mappings = initial_mappings(&pair).expect("mappings");
        let m = mappings
            .iter()
            .find(|m| {
                verify_in_budgeted(&mut TermPool::new(), &pair, m, &Budget::default()).is_ok()
            })
            .expect("a verifying mapping exists")
            .clone();
        (pair, m)
    }

    #[test]
    fn zero_symexec_fuel_fails_with_recorded_reason() {
        let (pair, m) = figure1_pair_and_mapping();
        let budget = Budget { symexec_steps: 0, ..Budget::default() };
        let err = verify_in_budgeted(&mut TermPool::new(), &pair, &m, &budget).unwrap_err();
        assert_eq!(err, VerifyFail::Other(REASON_SYMEXEC_FUEL));
    }

    #[test]
    fn tiny_term_cap_fails_with_recorded_reason() {
        let (pair, m) = figure1_pair_and_mapping();
        let budget = Budget { term_pool_cap: 4, ..Budget::default() };
        let err = verify_in_budgeted(&mut TermPool::new(), &pair, &m, &budget).unwrap_err();
        assert_eq!(err, VerifyFail::Other(REASON_TERM_CAP));
    }

    #[test]
    fn exhausted_budget_does_not_poison_the_pool() {
        // The same pool must verify the pair normally after a budgeted
        // failure — exhaustion is a per-query outcome, not pool damage.
        let (pair, m) = figure1_pair_and_mapping();
        let mut pool = TermPool::new();
        let budget = Budget { symexec_steps: 0, ..Budget::default() };
        assert!(verify_in_budgeted(&mut pool, &pair, &m, &budget).is_err());
        pool.reset();
        pool.set_soft_cap(usize::MAX);
        assert!(verify_in_budgeted(&mut pool, &pair, &m, &Budget::default()).is_ok());
    }
}
