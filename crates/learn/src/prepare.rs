//! The preparation filter (paper §3.1 and Table 1's "#F in Preparation").

use crate::extract::SnippetPair;
use ldbt_arm::ArmInstr;
use ldbt_x86::X86Instr;

/// Why a snippet was rejected in preparation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrepFail {
    /// Contains a call or indirect branch ("CI").
    CallIndirect,
    /// Contains a predicated (conditionally executed) instruction ("PI").
    Predicated,
    /// Spans multiple basic blocks ("MB").
    MultiBlock,
}

/// Check a snippet pair against the preparation rules.
///
/// # Errors
///
/// Returns the paper's failure category for rejected snippets.
pub fn prepare(pair: &SnippetPair) -> Result<(), PrepFail> {
    // Guest-side checks.
    for (i, (g, _)) in pair.guest.iter().enumerate() {
        let last = i + 1 == pair.guest.len();
        match g {
            ArmInstr::Bl { .. } | ArmInstr::Bx { .. } | ArmInstr::Svc { .. } => {
                return Err(PrepFail::CallIndirect)
            }
            ArmInstr::B { .. } if !last => return Err(PrepFail::MultiBlock),
            _ => {}
        }
        if g.is_predicated() {
            return Err(PrepFail::Predicated);
        }
    }
    // Host-side checks.
    for (i, (h, _)) in pair.host.iter().enumerate() {
        let last = i + 1 == pair.host.len();
        match h {
            X86Instr::Call { .. }
            | X86Instr::Ret
            | X86Instr::JmpInd { .. }
            | X86Instr::Push { .. }
            | X86Instr::Pop { .. }
            | X86Instr::Halt => return Err(PrepFail::CallIndirect),
            X86Instr::Jcc { .. } if !last => return Err(PrepFail::MultiBlock),
            X86Instr::Jmp { .. } => return Err(PrepFail::MultiBlock),
            _ => {}
        }
    }
    // A branch on one side requires one on the other; asymmetric control
    // flow means the line spans blocks differently on the two sides.
    let g_branch = matches!(pair.guest.last(), Some((ArmInstr::B { .. }, _)));
    let h_branch = matches!(pair.host.last(), Some((X86Instr::Jcc { .. }, _)));
    if g_branch != h_branch {
        return Err(PrepFail::MultiBlock);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldbt_arm::{ArmReg, Cond, DpOp, Operand2};
    use ldbt_isa::SourceLoc;
    use ldbt_x86::{AluOp, Cc, Gpr, Operand};

    fn pair(guest: Vec<ArmInstr>, host: Vec<X86Instr>) -> SnippetPair {
        SnippetPair {
            loc: SourceLoc::line(1),
            func: "f".into(),
            guest: guest.into_iter().map(|g| (g, None)).collect(),
            host: host.into_iter().map(|h| (h, None)).collect(),
        }
    }

    #[test]
    fn clean_snippet_passes() {
        let p = pair(
            vec![ArmInstr::dp(DpOp::Add, ArmReg::R0, ArmReg::R0, Operand2::Reg(ArmReg::R1))],
            vec![X86Instr::alu_rr(AluOp::Add, Gpr::Eax, Gpr::Ecx)],
        );
        assert_eq!(prepare(&p), Ok(()));
    }

    #[test]
    fn calls_rejected() {
        let p = pair(vec![ArmInstr::Bl { offset: 0, cond: Cond::Al }], vec![]);
        assert_eq!(prepare(&p), Err(PrepFail::CallIndirect));
        let p = pair(vec![], vec![X86Instr::Call { target: 0 }]);
        assert_eq!(prepare(&p), Err(PrepFail::CallIndirect));
        let p = pair(vec![ArmInstr::Bx { rm: ArmReg::Lr, cond: Cond::Al }], vec![]);
        assert_eq!(prepare(&p), Err(PrepFail::CallIndirect));
        let p = pair(vec![], vec![X86Instr::Push { src: Operand::Reg(Gpr::Eax) }]);
        assert_eq!(prepare(&p), Err(PrepFail::CallIndirect));
    }

    #[test]
    fn predicated_rejected() {
        let p = pair(
            vec![ArmInstr::Dp {
                op: DpOp::Mov,
                rd: ArmReg::R0,
                rn: ArmReg::R0,
                op2: Operand2::Imm(1),
                set_flags: false,
                cond: Cond::Lt,
            }],
            vec![],
        );
        assert_eq!(prepare(&p), Err(PrepFail::Predicated));
    }

    #[test]
    fn mid_sequence_branch_rejected() {
        let p = pair(
            vec![
                ArmInstr::B { offset: 1, cond: Cond::Eq },
                ArmInstr::mov(ArmReg::R0, Operand2::Imm(1)),
            ],
            vec![X86Instr::mov_imm(Gpr::Eax, 1), X86Instr::Jcc { cc: Cc::E, target: 0 }],
        );
        assert_eq!(prepare(&p), Err(PrepFail::MultiBlock));
    }

    #[test]
    fn matched_final_branches_pass() {
        let p = pair(
            vec![
                ArmInstr::cmp(ArmReg::R0, Operand2::Imm(0)),
                ArmInstr::B { offset: 3, cond: Cond::Ne },
            ],
            vec![
                X86Instr::alu_ri(AluOp::Cmp, Gpr::Eax, 0),
                X86Instr::Jcc { cc: Cc::Ne, target: 0 },
            ],
        );
        assert_eq!(prepare(&p), Ok(()));
    }

    #[test]
    fn asymmetric_branch_rejected() {
        let p = pair(
            vec![
                ArmInstr::cmp(ArmReg::R0, Operand2::Imm(0)),
                ArmInstr::B { offset: 3, cond: Cond::Ne },
            ],
            vec![X86Instr::alu_ri(AluOp::Cmp, Gpr::Eax, 0)],
        );
        assert_eq!(prepare(&p), Err(PrepFail::MultiBlock));
    }

    #[test]
    fn unconditional_jump_is_multiblock() {
        let p = pair(vec![], vec![X86Instr::Jmp { target: 0 }]);
        assert_eq!(prepare(&p), Err(PrepFail::MultiBlock));
    }
}
