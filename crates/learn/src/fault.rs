//! Env-driven fault injection for exercising the containment layer.
//!
//! `LDBT_FAULT=<site>:<seed>` arms exactly one deterministic fault per
//! run; each site targets a different containment mechanism:
//!
//! | site             | injected fault                         | contained by                  |
//! |------------------|----------------------------------------|-------------------------------|
//! | `rule-corrupt`   | clobber a rule application's host code | watchdog quarantine (`dbt`)   |
//! | `solver-exhaust` | force the SAT conflict budget to seed  | budget → `VerifyFail::Other`  |
//! | `worker-panic`   | panic in one verification worker       | `catch_unwind` isolation      |
//!
//! The seed selects *which* item faults (an application index, a budget
//! value, a worker item index), keeping every injected run reproducible.
//! Faults are injected only where a [`FaultPlan`] is explicitly threaded
//! (engine/learn config); library defaults pick the plan up from the
//! environment once per process.

use std::sync::OnceLock;

/// Where the fault is injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Corrupt the host code of one rule application at lowering time.
    RuleCorrupt,
    /// Replace the SAT conflict budget with the seed (0 = every
    /// SAT-stage query exhausts immediately).
    SolverExhaust,
    /// Panic inside one parallel verification worker item.
    WorkerPanic,
}

impl FaultSite {
    /// The site's `LDBT_FAULT` selector name (also the trace-event tag).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::RuleCorrupt => "rule-corrupt",
            FaultSite::SolverExhaust => "solver-exhaust",
            FaultSite::WorkerPanic => "worker-panic",
        }
    }
}

/// One armed fault: a site plus a deterministic seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Injection site.
    pub site: FaultSite,
    /// Deterministic selector (meaning depends on the site).
    pub seed: u64,
}

impl FaultPlan {
    /// Parse `<site>[:<seed>]`; unknown sites and malformed seeds yield
    /// `None` (an unparseable plan must never arm a surprise fault).
    pub fn parse(s: &str) -> Option<FaultPlan> {
        let (name, seed) = match s.split_once(':') {
            Some((name, seed)) => (name, seed.parse().ok()?),
            None => (s, 0),
        };
        let site = match name {
            "rule-corrupt" => FaultSite::RuleCorrupt,
            "solver-exhaust" => FaultSite::SolverExhaust,
            "worker-panic" => FaultSite::WorkerPanic,
            _ => return None,
        };
        Some(FaultPlan { site, seed })
    }
}

/// The process-wide plan from `LDBT_FAULT`, read once.
pub fn env_plan() -> Option<FaultPlan> {
    static PLAN: OnceLock<Option<FaultPlan>> = OnceLock::new();
    *PLAN.get_or_init(|| std::env::var("LDBT_FAULT").ok().as_deref().and_then(FaultPlan::parse))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_sites_and_seeds() {
        assert_eq!(
            FaultPlan::parse("rule-corrupt:3"),
            Some(FaultPlan { site: FaultSite::RuleCorrupt, seed: 3 })
        );
        assert_eq!(
            FaultPlan::parse("solver-exhaust"),
            Some(FaultPlan { site: FaultSite::SolverExhaust, seed: 0 })
        );
        assert_eq!(
            FaultPlan::parse("worker-panic:17"),
            Some(FaultPlan { site: FaultSite::WorkerPanic, seed: 17 })
        );
        assert_eq!(FaultPlan::parse("melt-cpu:1"), None);
        assert_eq!(FaultPlan::parse("rule-corrupt:x"), None);
    }
}
