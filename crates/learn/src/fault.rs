//! Env-driven fault injection for exercising the containment layer.
//!
//! `LDBT_FAULT=<site>:<seed>` arms exactly one deterministic fault per
//! run; each site targets a different containment mechanism:
//!
//! | site             | injected fault                          | contained by                  |
//! |------------------|-----------------------------------------|-------------------------------|
//! | `rule-corrupt`   | clobber a rule application's host code  | watchdog quarantine (`dbt`)   |
//! | `imm-skew`       | skew an `ImmRel` of one installed rule  | watchdog **repair** (`dbt`)   |
//! | `operand-swap`   | swap two operand bindings of one rule   | watchdog **repair** (`dbt`)   |
//! | `solver-exhaust` | force the SAT conflict budget to seed   | budget → `VerifyFail::Other`  |
//! | `worker-panic`   | panic in one verification worker        | `catch_unwind` isolation      |
//!
//! The seed selects *which* item faults (an application index, a rule
//! index, a budget value, a worker item index), keeping every injected
//! run reproducible. Faults are injected only where a [`FaultPlan`] is
//! explicitly threaded (engine/learn config); library defaults pick the
//! plan up from the environment once per process.
//!
//! `imm-skew` and `operand-swap` corrupt the *installed* rule set once,
//! via [`corrupt_ruleset`] — the rule's stored metadata goes wrong, so a
//! successful counterexample-guided repair (which republishes a corrected
//! rule) provably recovers: retranslation after the repair is clean. By
//! contrast `rule-corrupt` re-clobbers the host code at *every* lowering
//! of the seed-th application, so no rule replacement can fix it — it is
//! the must-stay-quarantined control for the repair loop.

use crate::rule::{ImmRel, RuleSet};
use std::sync::OnceLock;

/// Where the fault is injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Corrupt the host code of one rule application at lowering time.
    RuleCorrupt,
    /// Skew one parameterized-immediate relation ([`ImmRel`]) of the
    /// seed-th eligible installed rule (repairable).
    ImmSkew,
    /// Swap two operand bindings (`host_reg_of` entries) of the seed-th
    /// eligible installed rule (repairable).
    OperandSwap,
    /// Replace the SAT conflict budget with the seed (0 = every
    /// SAT-stage query exhausts immediately).
    SolverExhaust,
    /// Panic inside one parallel verification worker item.
    WorkerPanic,
}

impl FaultSite {
    /// The site's `LDBT_FAULT` selector name (also the trace-event tag).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::RuleCorrupt => "rule-corrupt",
            FaultSite::ImmSkew => "imm-skew",
            FaultSite::OperandSwap => "operand-swap",
            FaultSite::SolverExhaust => "solver-exhaust",
            FaultSite::WorkerPanic => "worker-panic",
        }
    }
}

/// One armed fault: a site plus a deterministic seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Injection site.
    pub site: FaultSite,
    /// Deterministic selector (meaning depends on the site).
    pub seed: u64,
}

impl FaultPlan {
    /// Parse `<site>[:<seed>]`; unknown sites and malformed seeds yield
    /// `None` (an unparseable plan must never arm a surprise fault).
    pub fn parse(s: &str) -> Option<FaultPlan> {
        let (name, seed) = match s.split_once(':') {
            Some((name, seed)) => (name, seed.parse().ok()?),
            None => (s, 0),
        };
        let site = match name {
            "rule-corrupt" => FaultSite::RuleCorrupt,
            "imm-skew" => FaultSite::ImmSkew,
            "operand-swap" => FaultSite::OperandSwap,
            "solver-exhaust" => FaultSite::SolverExhaust,
            "worker-panic" => FaultSite::WorkerPanic,
            _ => return None,
        };
        Some(FaultPlan { site, seed })
    }
}

/// The process-wide plan from `LDBT_FAULT`, read once.
pub fn env_plan() -> Option<FaultPlan> {
    static PLAN: OnceLock<Option<FaultPlan>> = OnceLock::new();
    *PLAN.get_or_init(|| std::env::var("LDBT_FAULT").ok().as_deref().and_then(FaultPlan::parse))
}

/// Skewed replacement for an [`ImmRel`]: the corrupted relation differs
/// from the original on *every* bound value, so any execution through the
/// skewed site diverges (`!v ≠ v`, `!v ≠ -v`, and `v ≠ !v` for all `v`) —
/// the watchdog is guaranteed a counterexample, not a coincidence.
fn skew_rel(rel: ImmRel) -> ImmRel {
    match rel {
        ImmRel::Id | ImmRel::Neg => ImmRel::Not,
        ImmRel::Not => ImmRel::Id,
    }
}

/// Apply an install-time corruption (`imm-skew` / `operand-swap`) to one
/// rule of an installed rule set, in place. Returns the corrupted rule's
/// stable key, or `None` when the plan targets a different site or no
/// rule is eligible.
///
/// Eligibility and selection are deterministic: rules are visited in the
/// set's canonical iteration order and the seed indexes (mod count) into
/// the eligible ones. Only rule *metadata* is touched — the guest/host
/// templates stay intact, which is exactly what makes the corruption
/// repairable by template-seeded re-parameterization.
pub fn corrupt_ruleset(rules: &mut RuleSet, plan: FaultPlan) -> Option<u64> {
    match plan.site {
        FaultSite::ImmSkew => {
            let eligible: Vec<u64> = rules
                .iter()
                .filter(|r| r.imm_params.iter().any(|p| !p.host_sites.is_empty()))
                .map(|r| r.stable_key())
                .collect();
            let key = *eligible.get(plan.seed as usize % eligible.len().max(1))?;
            let mut bad = rules.find_by_key(key)?.clone();
            let param = bad.imm_params.iter_mut().find(|p| !p.host_sites.is_empty())?;
            let site = &mut param.host_sites[0];
            site.2 = skew_rel(site.2);
            rules.replace(key, bad).then_some(key)
        }
        FaultSite::OperandSwap => {
            let eligible: Vec<u64> = rules
                .iter()
                .filter(|r| {
                    let mut guests: Vec<usize> =
                        r.host_reg_of.values().map(|g| g.index()).collect();
                    guests.sort_unstable();
                    guests.dedup();
                    guests.len() >= 2
                })
                .map(|r| r.stable_key())
                .collect();
            let key = *eligible.get(plan.seed as usize % eligible.len().max(1))?;
            let mut bad = rules.find_by_key(key)?.clone();
            // Swap the guest correspondences of the two lowest-numbered
            // host registers with distinct guest registers.
            let mut hosts: Vec<_> = bad.host_reg_of.keys().copied().collect();
            hosts.sort_by_key(|h| h.index());
            let a = hosts[0];
            let b = *hosts[1..].iter().find(|h| bad.host_reg_of[*h] != bad.host_reg_of[&a])?;
            let (ga, gb) = (bad.host_reg_of[&a], bad.host_reg_of[&b]);
            bad.host_reg_of.insert(a, gb);
            bad.host_reg_of.insert(b, ga);
            rules.replace(key, bad).then_some(key)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::{ImmParam, ImmSlot, Rule};
    use ldbt_arm::{ArmInstr, ArmReg, DpOp, Operand2};
    use ldbt_x86::{AluOp, Gpr, X86Instr};

    #[test]
    fn parse_sites_and_seeds() {
        assert_eq!(
            FaultPlan::parse("rule-corrupt:3"),
            Some(FaultPlan { site: FaultSite::RuleCorrupt, seed: 3 })
        );
        assert_eq!(
            FaultPlan::parse("solver-exhaust"),
            Some(FaultPlan { site: FaultSite::SolverExhaust, seed: 0 })
        );
        assert_eq!(
            FaultPlan::parse("worker-panic:17"),
            Some(FaultPlan { site: FaultSite::WorkerPanic, seed: 17 })
        );
        assert_eq!(
            FaultPlan::parse("imm-skew:2"),
            Some(FaultPlan { site: FaultSite::ImmSkew, seed: 2 })
        );
        assert_eq!(
            FaultPlan::parse("operand-swap"),
            Some(FaultPlan { site: FaultSite::OperandSwap, seed: 0 })
        );
        assert_eq!(FaultPlan::parse("melt-cpu:1"), None);
        assert_eq!(FaultPlan::parse("rule-corrupt:x"), None);
        assert_eq!(FaultPlan::parse("imm-skew:x"), None);
    }

    #[test]
    fn skew_always_differs() {
        for rel in [ImmRel::Id, ImmRel::Neg, ImmRel::Not] {
            let bad = skew_rel(rel);
            assert_ne!(rel, bad);
            for v in [-7i64, -1, 0, 1, 3, 0x7fff_ffff] {
                assert_ne!(rel.apply(v), bad.apply(v), "{rel:?}→{bad:?} must differ at {v}");
            }
        }
    }

    fn imm_rule() -> Rule {
        Rule {
            guest: vec![ArmInstr::dp(DpOp::Eor, ArmReg::R0, ArmReg::R0, Operand2::Imm(3))],
            host: vec![X86Instr::alu_ri(AluOp::Xor, Gpr::Ecx, 3)],
            host_reg_of: [(Gpr::Ecx, ArmReg::R0)].into_iter().collect(),
            imm_params: vec![ImmParam {
                guest_site: (0, ImmSlot::Data),
                extra_guest_sites: vec![],
                template_value: 3,
                host_sites: vec![(0, ImmSlot::Data, ImmRel::Id)],
            }],
            unemulated_flags: 0,
            has_branch: false,
        }
    }

    fn two_reg_rule() -> Rule {
        Rule {
            guest: vec![ArmInstr::dp(DpOp::Add, ArmReg::R0, ArmReg::R0, Operand2::Reg(ArmReg::R1))],
            host: vec![X86Instr::alu_rr(AluOp::Add, Gpr::Ecx, Gpr::Edx)],
            host_reg_of: [(Gpr::Ecx, ArmReg::R0), (Gpr::Edx, ArmReg::R1)].into_iter().collect(),
            imm_params: vec![],
            unemulated_flags: 0,
            has_branch: false,
        }
    }

    #[test]
    fn imm_skew_corrupts_the_relation_and_keeps_the_key() {
        let mut rs = RuleSet::new();
        rs.insert(two_reg_rule()); // ineligible (no imm params)
        rs.insert(imm_rule());
        let want_key = imm_rule().stable_key();
        let key = corrupt_ruleset(&mut rs, FaultPlan { site: FaultSite::ImmSkew, seed: 0 })
            .expect("an eligible rule exists");
        assert_eq!(key, want_key, "only the imm-param rule is eligible");
        let bad = rs.find_by_key(key).unwrap();
        assert_eq!(bad.imm_params[0].host_sites[0].2, ImmRel::Not, "Id skews to Not");
        assert_eq!(bad.guest, imm_rule().guest, "guest template untouched");
        assert_eq!(bad.host, imm_rule().host, "host template untouched");
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn operand_swap_swaps_two_bindings_and_keeps_the_key() {
        let mut rs = RuleSet::new();
        rs.insert(imm_rule()); // ineligible (one distinct guest reg)
        rs.insert(two_reg_rule());
        let want_key = two_reg_rule().stable_key();
        let key = corrupt_ruleset(&mut rs, FaultPlan { site: FaultSite::OperandSwap, seed: 0 })
            .expect("an eligible rule exists");
        assert_eq!(key, want_key, "only the two-register rule is eligible");
        let bad = rs.find_by_key(key).unwrap();
        assert_eq!(bad.host_reg_of[&Gpr::Ecx], ArmReg::R1, "bindings swapped");
        assert_eq!(bad.host_reg_of[&Gpr::Edx], ArmReg::R0, "bindings swapped");
        assert_eq!(bad.host, two_reg_rule().host, "host template untouched");
    }

    #[test]
    fn corrupt_ruleset_ignores_other_sites_and_empty_sets() {
        let mut rs = RuleSet::new();
        rs.insert(imm_rule());
        for site in [FaultSite::RuleCorrupt, FaultSite::SolverExhaust, FaultSite::WorkerPanic] {
            assert_eq!(corrupt_ruleset(&mut rs, FaultPlan { site, seed: 0 }), None);
        }
        let mut empty = RuleSet::new();
        assert_eq!(
            corrupt_ruleset(&mut empty, FaultPlan { site: FaultSite::ImmSkew, seed: 0 }),
            None
        );
    }
}
