//! Counterexample-guided rule repair (ROADMAP item 4, after RulER).
//!
//! When the runtime watchdog catches a rule-covered block diverging from
//! the ARM interpreter, the engine attributes the divergence to a single
//! rule (bisection replay in `ldbt-dbt`) and hands this module the
//! quarantined [`Rule`] plus a [`Counterexample`] — the concrete binding
//! that was executing and the divergent-vs-reference register values.
//! Repair then runs the *learning* machinery in reverse:
//!
//! 1. **Localize** ([`diagnose`]): check every stored [`ImmRel`] against
//!    the rule's own templates — at a parameterized host site the template
//!    immediate must equal `rel.apply(template_value)`, so a skewed
//!    relation is self-inconsistent and names the falsified site.
//! 2. **Re-parameterize**: rebuild candidate operand mappings from the
//!    (intact) guest/host templates via [`initial_mappings`] — the same
//!    §3.2 heuristics that learned the rule in the first place.
//! 3. **Re-verify & gate on the counterexample**: each candidate goes
//!    through [`verify_in_budgeted`] under the caller's repair [`Budget`];
//!    an accepted candidate must keep the rule's [`Rule::stable_key`]
//!    (so hot publication via `RuleSet::replace` stays index-safe) and
//!    must instantiate *differently* from the quarantined rule under the
//!    counterexample's binding — identical host code cannot explain, let
//!    alone fix, the observed divergence. That filter is what makes the
//!    counterexample a mandatory test vector: a rule whose metadata is
//!    actually correct (e.g. the `rule-corrupt` fault, which clobbers
//!    emitted code rather than the rule) re-learns only byte-identical
//!    candidates and the repair honestly fails.
//!
//! The engine keeps the pre-dispatch memory snapshot on its side and
//! replays the repaired rule against the interpreter reference before
//! publishing — this module only has to produce a verified, key-stable,
//! counterexample-separating candidate.

use crate::budget::Budget;
use crate::extract::SnippetPair;
use crate::param::initial_mappings;
use crate::rule::{Binding, ImmRel, ImmSlot, Rule};
use crate::verify::verify_in_budgeted;
use ldbt_arm::ArmReg;
use ldbt_isa::SourceLoc;
use ldbt_smt::TermPool;
use ldbt_x86::{Gpr, Operand, X86Instr};

/// A runtime divergence captured by the watchdog, attributed to one rule.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Guest PC of the diverging block.
    pub block_pc: u32,
    /// The binding the rule was applied under when the block diverged.
    pub binding: Binding,
    /// Divergent registers: `(reg, observed, expected)` — the value the
    /// rule-translated code produced vs. the interpreter reference.
    pub divergent: Vec<(ArmReg, u32, u32)>,
}

/// What [`diagnose`] found falsified by the rule's own templates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Falsified {
    /// Host site `site` of immediate parameter `param` stores `stored`,
    /// but the template values imply `implied` (`None`: no single
    /// [`ImmRel`] explains the templates at all).
    ImmRelation { param: usize, site: usize, stored: ImmRel, implied: Option<ImmRel> },
    /// No immediate relation is self-inconsistent — the fault is in the
    /// operand mapping (`host_reg_of`), which templates alone cannot
    /// pinpoint; re-parameterization searches the mapping space instead.
    OperandMapping,
}

/// Why a repair attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairFail {
    /// The templates no longer parameterize at all.
    NoMappings,
    /// Every candidate was rejected (verification failed, the stable key
    /// changed, or the candidate could not explain the counterexample).
    NoCandidate {
        /// Number of candidate mappings tried.
        tried: usize,
    },
}

/// A successful repair.
#[derive(Debug, Clone)]
pub struct RepairReport {
    /// The repaired, re-verified rule (same [`Rule::stable_key`] as the
    /// quarantined rule — safe to hot-publish via `RuleSet::replace`).
    pub rule: Rule,
    /// What localization falsified (diagnostics for tracing).
    pub falsified: Vec<Falsified>,
    /// Number of candidate mappings tried before acceptance.
    pub candidates_tried: usize,
}

/// The dedicated repair budget: repair runs on the engine's hot path
/// aftermath, so it gets half the learning-time solver budget — enough
/// for the short rules the DBT applies, bounded enough that a
/// pathological counterexample cannot stall dispatch.
pub fn repair_budget() -> Budget {
    let d = Budget::default();
    Budget { solver_conflicts: d.solver_conflicts / 2, ..d }
}

/// The template immediate stored at a host site, mirroring exactly the
/// slots [`Rule::instantiate`] substitutes into.
fn host_imm_at(i: &X86Instr, slot: ImmSlot) -> Option<i64> {
    match slot {
        ImmSlot::Data => match i {
            X86Instr::Mov { src: Operand::Imm(v), .. }
            | X86Instr::Alu { src: Operand::Imm(v), .. }
            | X86Instr::Imul { src: Operand::Imm(v), .. }
            | X86Instr::Un { dst: Operand::Imm(v), .. }
            | X86Instr::Shift { dst: Operand::Imm(v), .. } => Some(*v as i64),
            _ => None,
        },
        ImmSlot::MemOffset => {
            if let X86Instr::Lea { addr, .. } = i {
                return Some(addr.disp as i64);
            }
            if let X86Instr::MovStore { dst, .. } = i {
                return Some(dst.disp as i64);
            }
            for op in instr_operands(i) {
                if let Operand::Mem(m) = op {
                    return Some(m.disp as i64);
                }
            }
            None
        }
    }
}

fn instr_operands(i: &X86Instr) -> Vec<&Operand> {
    match i {
        X86Instr::Mov { dst, src } | X86Instr::Alu { dst, src, .. } => vec![dst, src],
        X86Instr::Imul { src, .. } | X86Instr::Movx { src, .. } => vec![src],
        X86Instr::Shift { dst, .. } | X86Instr::Un { dst, .. } => vec![dst],
        _ => vec![],
    }
}

/// Localize which stored relations the rule's own templates falsify.
///
/// A healthy rule is *self-consistent*: at every parameterized host site
/// the template immediate equals `rel.apply(template_value)` (that is how
/// the relation was derived during learning). A site where that fails is
/// the repair target; if every site checks out, the fault must be in the
/// operand mapping and [`Falsified::OperandMapping`] is reported instead.
pub fn diagnose(rule: &Rule) -> Vec<Falsified> {
    let mut out = Vec::new();
    for (p, param) in rule.imm_params.iter().enumerate() {
        for (s, (hi, hslot, rel)) in param.host_sites.iter().enumerate() {
            let Some(host_v) = rule.host.get(*hi).and_then(|i| host_imm_at(i, *hslot)) else {
                continue;
            };
            if host_v as i32 == rel.apply(param.template_value) as i32 {
                continue;
            }
            let implied = [ImmRel::Id, ImmRel::Neg, ImmRel::Not]
                .into_iter()
                .find(|r| host_v as i32 == r.apply(param.template_value) as i32);
            out.push(Falsified::ImmRelation { param: p, site: s, stored: *rel, implied });
        }
    }
    if out.is_empty() {
        out.push(Falsified::OperandMapping);
    }
    out
}

/// A deterministic host-register allocation over the binding's actual
/// guest registers, used to compare two instantiations of the same guest
/// template: distinct actual registers get successive pool registers in
/// register-index order, so the comparison sees only differences that
/// come from the *rules*, never from allocation order.
fn identity_alloc(binding: &Binding) -> impl FnMut(ArmReg) -> Gpr + '_ {
    let mut actual: Vec<ArmReg> = binding.regs.values().copied().collect();
    actual.sort_by_key(|r| r.index());
    move |g: ArmReg| {
        let i = actual.iter().position(|r| *r == g).expect("actual register is bound");
        Gpr::ALL[i % Gpr::ALL.len()]
    }
}

/// Whether two same-template rules emit byte-identical host code under
/// the counterexample's binding. A candidate that does cannot explain the
/// observed divergence and is rejected.
fn instantiates_identically(a: &Rule, b: &Rule, binding: &Binding) -> bool {
    a.instantiate(binding, identity_alloc(binding))
        == b.instantiate(binding, identity_alloc(binding))
}

/// Attempt to repair a quarantined rule against a counterexample.
///
/// On success the returned rule has the same [`Rule::stable_key`] as the
/// input (hot publication via `RuleSet::replace` + `RuleSet::revive` is
/// safe) and is guaranteed to instantiate differently from the
/// quarantined rule under the counterexample's binding.
///
/// # Errors
///
/// [`RepairFail::NoMappings`] when the templates no longer parameterize;
/// [`RepairFail::NoCandidate`] when no candidate survives verification
/// and the counterexample gate.
pub fn repair(
    quarantined: &Rule,
    cex: &Counterexample,
    budget: &Budget,
) -> Result<RepairReport, RepairFail> {
    let falsified = diagnose(quarantined);
    // Rebuild the learning input from the rule's own (intact) templates.
    // Memory-operand variable names are long gone; every site gets the
    // same empty name, which pairs them in occurrence order — the
    // verifier gates any mis-pairing.
    let pair = SnippetPair {
        loc: SourceLoc::line(0),
        func: "repair".into(),
        guest: quarantined.guest.iter().map(|g| (*g, None)).collect(),
        host: quarantined.host.iter().map(|h| (*h, None)).collect(),
    };
    let mappings = initial_mappings(&pair).map_err(|_| RepairFail::NoMappings)?;
    let mut pool = TermPool::new();
    let mut tried = 0;
    for m in &mappings {
        tried += 1;
        pool.reset();
        let Ok(candidate) = verify_in_budgeted(&mut pool, &pair, m, budget) else {
            continue;
        };
        // Hot publication requires an unchanged identity: same guest
        // template (it is, verbatim) and same parameter sites.
        if candidate.guest != quarantined.guest
            || candidate.stable_key() != quarantined.stable_key()
        {
            continue;
        }
        // The counterexample is a mandatory test vector: the repaired
        // rule must actually change the code the divergent block ran.
        if instantiates_identically(&candidate, quarantined, &cex.binding) {
            continue;
        }
        return Ok(RepairReport { rule: candidate, falsified, candidates_tried: tried });
    }
    Err(RepairFail::NoCandidate { tried })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{corrupt_ruleset, FaultPlan, FaultSite};
    use crate::rule::RuleSet;
    use crate::verify::verify;
    use ldbt_arm::{ArmInstr, DpOp, Operand2};
    use ldbt_x86::AluOp;

    fn learn(guest: Vec<ArmInstr>, host: Vec<X86Instr>) -> Rule {
        let pair = SnippetPair {
            loc: SourceLoc::line(1),
            func: "t".into(),
            guest: guest.into_iter().map(|g| (g, None)).collect(),
            host: host.into_iter().map(|h| (h, None)).collect(),
        };
        let mappings = initial_mappings(&pair).expect("mappings");
        for m in &mappings {
            if let Ok(r) = verify(&pair, m) {
                return r;
            }
        }
        panic!("test rule must verify");
    }

    /// `eor r0, r0, #3` → `xorl $3, %ecx`: one Id immediate parameter.
    fn imm_rule() -> Rule {
        learn(
            vec![ArmInstr::dp(DpOp::Eor, ArmReg::R0, ArmReg::R0, Operand2::Imm(3))],
            vec![X86Instr::alu_ri(AluOp::Xor, Gpr::Ecx, 3)],
        )
    }

    /// `add r0, r0, r1` → `addl %edx, %ecx`: two operand bindings.
    fn two_reg_rule() -> Rule {
        learn(
            vec![ArmInstr::dp(DpOp::Add, ArmReg::R0, ArmReg::R0, Operand2::Reg(ArmReg::R1))],
            vec![X86Instr::alu_rr(AluOp::Add, Gpr::Ecx, Gpr::Edx)],
        )
    }

    fn cex_for(rule: &Rule, seq: &[ArmInstr]) -> Counterexample {
        let binding = rule.matches(seq).expect("counterexample block matches the rule");
        Counterexample { block_pc: 0x1000, binding, divergent: vec![(ArmReg::R5, 1, 2)] }
    }

    fn skewed(rule: &Rule) -> Rule {
        let mut rs = RuleSet::new();
        rs.insert(rule.clone());
        let key = corrupt_ruleset(&mut rs, FaultPlan { site: FaultSite::ImmSkew, seed: 0 })
            .expect("eligible");
        rs.find_by_key(key).unwrap().clone()
    }

    #[test]
    fn diagnose_localizes_a_skewed_relation() {
        let good = imm_rule();
        assert_eq!(diagnose(&good), vec![Falsified::OperandMapping], "healthy rule: no imm site");
        let bad = skewed(&good);
        let f = diagnose(&bad);
        assert_eq!(f.len(), 1);
        match f[0] {
            Falsified::ImmRelation { stored, implied, .. } => {
                assert_eq!(stored, ImmRel::Not, "Id skews to Not");
                assert_eq!(implied, Some(ImmRel::Id), "templates imply the original relation");
            }
            other => panic!("expected ImmRelation, got {other:?}"),
        }
    }

    #[test]
    fn imm_skew_is_repaired() {
        let good = imm_rule();
        let bad = skewed(&good);
        let seq = [ArmInstr::dp(DpOp::Eor, ArmReg::R5, ArmReg::R5, Operand2::Imm(10))];
        let cex = cex_for(&bad, &seq);
        let report = repair(&bad, &cex, &repair_budget()).expect("repairable");
        assert_eq!(report.rule.stable_key(), bad.stable_key(), "key stable for hot publication");
        assert_eq!(report.rule.imm_params[0].host_sites[0].2, ImmRel::Id, "relation restored");
        // The repaired rule emits the original rule's code again.
        assert!(instantiates_identically(&report.rule, &good, &cex.binding));
        assert!(!instantiates_identically(&report.rule, &bad, &cex.binding));
    }

    #[test]
    fn operand_swap_is_repaired() {
        let good = two_reg_rule();
        let mut rs = RuleSet::new();
        rs.insert(good.clone());
        let key = corrupt_ruleset(&mut rs, FaultPlan { site: FaultSite::OperandSwap, seed: 0 })
            .expect("eligible");
        let bad = rs.find_by_key(key).unwrap().clone();
        assert_ne!(bad.host_reg_of, good.host_reg_of, "fault armed");
        let seq = [ArmInstr::dp(DpOp::Add, ArmReg::R4, ArmReg::R4, Operand2::Reg(ArmReg::R7))];
        let cex = cex_for(&bad, &seq);
        let report = repair(&bad, &cex, &repair_budget()).expect("repairable");
        assert_eq!(report.rule.stable_key(), bad.stable_key());
        assert!(instantiates_identically(&report.rule, &good, &cex.binding));
        assert!(!instantiates_identically(&report.rule, &bad, &cex.binding));
        assert_eq!(report.falsified, vec![Falsified::OperandMapping]);
    }

    #[test]
    fn correct_rule_cannot_be_repaired() {
        // The rule-corrupt control: the divergence came from clobbered
        // *emitted code*, the rule itself is right — every re-learned
        // candidate instantiates identically and must be rejected.
        let good = imm_rule();
        let seq = [ArmInstr::dp(DpOp::Eor, ArmReg::R5, ArmReg::R5, Operand2::Imm(10))];
        let cex = cex_for(&good, &seq);
        match repair(&good, &cex, &repair_budget()) {
            Err(RepairFail::NoCandidate { tried }) => assert!(tried > 0),
            other => panic!("expected NoCandidate, got {other:?}"),
        }
    }

    #[test]
    fn repair_budget_is_bounded() {
        let d = Budget::default();
        let r = repair_budget();
        assert!(r.solver_conflicts < d.solver_conflicts);
        assert_eq!(r.symexec_steps, d.symexec_steps);
    }
}
