//! The persistent rule database (DESIGN.md §15).
//!
//! Learned rules are expensive to produce — symbolic execution plus SAT
//! over every candidate signature — but cheap to apply. This module makes
//! them a durable artifact: a [`RuleSet`] and the cross-program
//! [`VerifyCache`] memo serialize to a single versioned file, so a node
//! warm-starts from disk and serves immediately instead of re-verifying
//! the whole suite on every boot.
//!
//! The format is hand-rolled little-endian binary (no serde, in the
//! spirit of `ldbt-obs`'s hand-rolled JSON): every enum gets an explicit
//! tag in declaration order, every struct is written field by field, and
//! collections are length-prefixed. Serialization is *structural*, not
//! machine encoding — `X86Instr::Jcc` targets are instruction-relative
//! indices, not byte displacements, and must round-trip exactly as the
//! translator sees them.
//!
//! ## File layout
//!
//! | field        | size | meaning                                        |
//! |--------------|------|------------------------------------------------|
//! | magic        | 8    | `"LDBTRUDB"`                                   |
//! | version      | 4    | [`FORMAT_VERSION`], little-endian              |
//! | fingerprint  | 8    | [`isa_fingerprint`] of the builder             |
//! | payload len  | 8    | byte length of the payload                     |
//! | checksum     | 8    | FNV-1a ([`sig_hash`]) over the payload bytes   |
//! | payload      | n    | rule set, then memo cache                      |
//!
//! A reader rejects (and the caller falls back to fresh learning) on bad
//! magic, a version it does not speak, a fingerprint produced by a
//! different ISA model, a checksum mismatch, a short file, or any
//! malformed payload — a stale or corrupt database must never load
//! half-way.
//!
//! Writing is deterministic: rules serialize in [`RuleSet::iter`] order
//! (canonical after [`RuleSet::merge`]), tombstone keys and the
//! `host_reg_of` map are sorted, and memo entries are sorted by
//! signature. Byte-identical inputs produce byte-identical files, which
//! the warm-start CI gate relies on.

use crate::cache::{sig_hash, VerifyCache, VerifyOutcome};
use crate::rule::{ImmParam, ImmRel, ImmSlot, Rule, RuleSet};
use crate::verify::VerifyFail;
use ldbt_arm::{AddrMode, ArmInstr, ArmReg, Cond, DpOp, Operand2, Shift};
use ldbt_isa::Width;
use ldbt_x86::{AluOp, Cc, Gpr, Operand, ShiftOp, UnOp, X86Instr, X86Mem};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};

/// On-disk magic, first 8 bytes of every database file.
pub const MAGIC: &[u8; 8] = b"LDBTRUDB";

/// Format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

/// Fingerprint of the ISA model the database was built against.
///
/// Hashes the variant counts of every serialized enum, so growing any
/// instruction-set enum (which would shift the tags below) automatically
/// invalidates existing databases instead of mis-decoding them.
pub fn isa_fingerprint() -> u64 {
    let text = format!(
        "ldbt-rule-db;arm:instr8,op2-3,shift4,addr3,dp{},cond{},reg{};\
         x86:instr20,operand3,alu{},shiftop3,unop4,cc{},gpr{};\
         width{};immrel3,immslot2,verifyfail4,outcome2",
        DpOp::ALL.len(),
        Cond::ALL.len(),
        ArmReg::ALL.len(),
        AluOp::ALL.len(),
        Cc::ALL.len(),
        Gpr::ALL.len(),
        Width::ALL.len(),
    );
    sig_hash(&text)
}

/// A loaded database: the rule store plus the verification memo.
#[derive(Debug, Clone)]
pub struct RuleDb {
    /// The learned rules, tombstones included.
    pub rules: RuleSet,
    /// The verification memo cache (signature → outcome).
    pub cache: VerifyCache,
}

/// Why a database failed to load. Every variant means "fall back to
/// fresh learning"; they are distinguished for diagnostics and tests.
#[derive(Debug)]
pub enum DbError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The first 8 bytes are not [`MAGIC`].
    BadMagic,
    /// The file's format version is not [`FORMAT_VERSION`].
    Version(u32),
    /// The file was written against a different ISA model.
    Fingerprint { found: u64, expected: u64 },
    /// The file ends before its declared payload does.
    Truncated,
    /// The payload bytes are malformed (checksum mismatch, bad enum
    /// tag, invalid UTF-8, trailing bytes, …).
    Corrupt(&'static str),
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::Io(e) => write!(f, "io error: {e}"),
            DbError::BadMagic => write!(f, "not a rule database (bad magic)"),
            DbError::Version(v) => {
                write!(f, "unsupported format version {v} (this build speaks {FORMAT_VERSION})")
            }
            DbError::Fingerprint { found, expected } => {
                write!(f, "ISA fingerprint mismatch (file {found:#018x}, build {expected:#018x})")
            }
            DbError::Truncated => write!(f, "truncated file"),
            DbError::Corrupt(what) => write!(f, "corrupt payload: {what}"),
        }
    }
}

impl std::error::Error for DbError {}

/// The database path configured via `LDBT_RULEDB` (empty/unset → none).
pub fn env_path() -> Option<PathBuf> {
    match std::env::var("LDBT_RULEDB") {
        Ok(s) if !s.is_empty() => Some(PathBuf::from(s)),
        _ => None,
    }
}

/// Serialize a rule set and memo cache to the on-disk byte format.
pub fn to_bytes(rules: &RuleSet, cache: &VerifyCache) -> Vec<u8> {
    let mut w = W::default();
    w.rule_set(rules);
    w.cache(cache);
    let payload = w.buf;
    let mut out = Vec::with_capacity(payload.len() + 36);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&isa_fingerprint().to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&checksum(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Deserialize a database from its on-disk byte format.
pub fn from_bytes(bytes: &[u8]) -> Result<RuleDb, DbError> {
    if bytes.len() < 8 {
        return Err(DbError::Truncated);
    }
    if &bytes[..8] != MAGIC {
        return Err(DbError::BadMagic);
    }
    if bytes.len() < 36 {
        return Err(DbError::Truncated);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(DbError::Version(version));
    }
    let fp = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let expected = isa_fingerprint();
    if fp != expected {
        return Err(DbError::Fingerprint { found: fp, expected });
    }
    let len = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes")) as usize;
    let sum = u64::from_le_bytes(bytes[28..36].try_into().expect("8 bytes"));
    let payload = &bytes[36..];
    if payload.len() < len {
        return Err(DbError::Truncated);
    }
    if payload.len() > len {
        return Err(DbError::Corrupt("trailing bytes after payload"));
    }
    if checksum(payload) != sum {
        return Err(DbError::Corrupt("checksum mismatch"));
    }
    let mut r = R { buf: payload, pos: 0 };
    let rules = r.rule_set()?;
    let cache = r.cache()?;
    if r.pos != r.buf.len() {
        return Err(DbError::Corrupt("payload longer than its contents"));
    }
    Ok(RuleDb { rules, cache })
}

/// Write the database to `path` (atomically: temp file + rename, so a
/// crash mid-write never leaves a half-written database behind).
pub fn save(path: &Path, rules: &RuleSet, cache: &VerifyCache) -> std::io::Result<()> {
    let bytes = to_bytes(rules, cache);
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, &bytes)?;
    std::fs::rename(&tmp, path)
}

/// Load the database at `path`.
pub fn load(path: &Path) -> Result<RuleDb, DbError> {
    let bytes = std::fs::read(path).map_err(DbError::Io)?;
    from_bytes(&bytes)
}

/// FNV-1a over raw payload bytes (the string hash from `cache`, reused
/// byte-wise).
fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Decode a `VerifyFail::Other` reason back to a `&'static str`.
///
/// The budget/pipeline reasons are canonical constants; anything else
/// (e.g. a `SymHazard::Unsupported` message minted at runtime) is
/// interned once via `Box::leak` — safe code, bounded by the set of
/// distinct reason strings ever loaded.
fn intern_reason(s: &str) -> &'static str {
    const KNOWN: &[&str] = &[
        crate::budget::REASON_SOLVER_BUDGET,
        crate::budget::REASON_SYMEXEC_FUEL,
        crate::budget::REASON_TERM_CAP,
        crate::budget::REASON_WORKER_PANIC,
        "no mapping",
        "symexec: possible aliasing",
        "symexec: mixed-width access",
        "symexec: mid-block branch",
    ];
    if let Some(k) = KNOWN.iter().find(|k| **k == s) {
        return k;
    }
    static INTERNED: OnceLock<Mutex<HashMap<String, &'static str>>> = OnceLock::new();
    let mut map = INTERNED
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .expect("reason interner poisoned");
    if let Some(k) = map.get(s) {
        return k;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    map.insert(s.to_owned(), leaked);
    leaked
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

#[derive(Default)]
struct W {
    buf: Vec<u8>,
}

impl W {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn boolean(&mut self, v: bool) {
        self.buf.push(v as u8);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Collection lengths and instruction indices, always 32-bit.
    fn len(&mut self, v: usize) {
        self.u32(u32::try_from(v).expect("length fits u32"));
    }
    fn string(&mut self, s: &str) {
        self.len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn arm_reg(&mut self, r: ArmReg) {
        self.u8(r.index() as u8);
    }
    fn gpr(&mut self, g: Gpr) {
        self.u8(g.index() as u8);
    }
    fn cond(&mut self, c: Cond) {
        self.u8(Cond::ALL.iter().position(|x| *x == c).expect("cond in ALL") as u8);
    }
    fn dp_op(&mut self, op: DpOp) {
        self.u8(DpOp::ALL.iter().position(|x| *x == op).expect("dp op in ALL") as u8);
    }
    fn alu_op(&mut self, op: AluOp) {
        self.u8(AluOp::ALL.iter().position(|x| *x == op).expect("alu op in ALL") as u8);
    }
    fn cc(&mut self, cc: Cc) {
        self.u8(Cc::ALL.iter().position(|x| *x == cc).expect("cc in ALL") as u8);
    }
    fn width(&mut self, w: Width) {
        self.u8(Width::ALL.iter().position(|x| *x == w).expect("width in ALL") as u8);
    }
    fn shift(&mut self, s: Shift) {
        match s {
            Shift::Lsl(a) => (self.u8(0), self.u8(a)),
            Shift::Lsr(a) => (self.u8(1), self.u8(a)),
            Shift::Asr(a) => (self.u8(2), self.u8(a)),
            Shift::Ror(a) => (self.u8(3), self.u8(a)),
        };
    }
    fn operand2(&mut self, op2: Operand2) {
        match op2 {
            Operand2::Imm(v) => {
                self.u8(0);
                self.u32(v);
            }
            Operand2::Reg(r) => {
                self.u8(1);
                self.arm_reg(r);
            }
            Operand2::RegShift(r, s) => {
                self.u8(2);
                self.arm_reg(r);
                self.shift(s);
            }
        }
    }
    fn addr_mode(&mut self, a: AddrMode) {
        match a {
            AddrMode::Imm(rn, off) => {
                self.u8(0);
                self.arm_reg(rn);
                self.i32(off);
            }
            AddrMode::Reg(rn, rm) => {
                self.u8(1);
                self.arm_reg(rn);
                self.arm_reg(rm);
            }
            AddrMode::RegShift(rn, rm, s) => {
                self.u8(2);
                self.arm_reg(rn);
                self.arm_reg(rm);
                self.u8(s);
            }
        }
    }

    fn arm_instr(&mut self, i: &ArmInstr) {
        match *i {
            ArmInstr::Dp { op, rd, rn, op2, set_flags, cond } => {
                self.u8(0);
                self.dp_op(op);
                self.arm_reg(rd);
                self.arm_reg(rn);
                self.operand2(op2);
                self.boolean(set_flags);
                self.cond(cond);
            }
            ArmInstr::Mul { rd, rn, rm, set_flags, cond } => {
                self.u8(1);
                self.arm_reg(rd);
                self.arm_reg(rn);
                self.arm_reg(rm);
                self.boolean(set_flags);
                self.cond(cond);
            }
            ArmInstr::Ldr { rt, addr, width, signed, cond } => {
                self.u8(2);
                self.arm_reg(rt);
                self.addr_mode(addr);
                self.width(width);
                self.boolean(signed);
                self.cond(cond);
            }
            ArmInstr::Str { rt, addr, width, cond } => {
                self.u8(3);
                self.arm_reg(rt);
                self.addr_mode(addr);
                self.width(width);
                self.cond(cond);
            }
            ArmInstr::B { offset, cond } => {
                self.u8(4);
                self.i32(offset);
                self.cond(cond);
            }
            ArmInstr::Bl { offset, cond } => {
                self.u8(5);
                self.i32(offset);
                self.cond(cond);
            }
            ArmInstr::Bx { rm, cond } => {
                self.u8(6);
                self.arm_reg(rm);
                self.cond(cond);
            }
            ArmInstr::Svc { imm, cond } => {
                self.u8(7);
                self.u32(imm);
                self.cond(cond);
            }
        }
    }

    fn x86_mem(&mut self, m: &X86Mem) {
        match m.base {
            Some(b) => {
                self.u8(1);
                self.gpr(b);
            }
            None => self.u8(0),
        }
        match m.index {
            Some((r, scale)) => {
                self.u8(1);
                self.gpr(r);
                self.u8(scale);
            }
            None => self.u8(0),
        }
        self.i32(m.disp);
    }
    fn operand(&mut self, op: &Operand) {
        match op {
            Operand::Reg(g) => {
                self.u8(0);
                self.gpr(*g);
            }
            Operand::Imm(v) => {
                self.u8(1);
                self.i32(*v);
            }
            Operand::Mem(m) => {
                self.u8(2);
                self.x86_mem(m);
            }
        }
    }

    fn x86_instr(&mut self, i: &X86Instr) {
        match *i {
            X86Instr::Mov { dst, src } => {
                self.u8(0);
                self.operand(&dst);
                self.operand(&src);
            }
            X86Instr::Alu { op, dst, src } => {
                self.u8(1);
                self.alu_op(op);
                self.operand(&dst);
                self.operand(&src);
            }
            X86Instr::Lea { dst, addr } => {
                self.u8(2);
                self.gpr(dst);
                self.x86_mem(&addr);
            }
            X86Instr::Imul { dst, src } => {
                self.u8(3);
                self.gpr(dst);
                self.operand(&src);
            }
            X86Instr::Shift { op, dst, count } => {
                self.u8(4);
                self.u8(match op {
                    ShiftOp::Shl => 0,
                    ShiftOp::Shr => 1,
                    ShiftOp::Sar => 2,
                });
                self.operand(&dst);
                self.u8(count);
            }
            X86Instr::Un { op, dst } => {
                self.u8(5);
                self.u8(match op {
                    UnOp::Neg => 0,
                    UnOp::Not => 1,
                    UnOp::Inc => 2,
                    UnOp::Dec => 3,
                });
                self.operand(&dst);
            }
            X86Instr::Movx { sign, width, dst, src } => {
                self.u8(6);
                self.boolean(sign);
                self.width(width);
                self.gpr(dst);
                self.operand(&src);
            }
            X86Instr::MovStore { width, src, dst } => {
                self.u8(7);
                self.width(width);
                self.gpr(src);
                self.x86_mem(&dst);
            }
            X86Instr::Setcc { cc, dst } => {
                self.u8(8);
                self.cc(cc);
                self.gpr(dst);
            }
            X86Instr::Jcc { cc, target } => {
                self.u8(9);
                self.cc(cc);
                self.i32(target);
            }
            X86Instr::Jmp { target } => {
                self.u8(10);
                self.i32(target);
            }
            X86Instr::JmpInd { src } => {
                self.u8(11);
                self.operand(&src);
            }
            X86Instr::Call { target } => {
                self.u8(12);
                self.i32(target);
            }
            X86Instr::Ret => self.u8(13),
            X86Instr::Push { src } => {
                self.u8(14);
                self.operand(&src);
            }
            X86Instr::Pop { dst } => {
                self.u8(15);
                self.operand(&dst);
            }
            X86Instr::Pushfd => self.u8(16),
            X86Instr::Popfd => self.u8(17),
            X86Instr::Halt => self.u8(18),
            X86Instr::ChainJmp { block } => {
                self.u8(19);
                self.u32(block);
            }
            X86Instr::Trap => self.u8(20),
        }
    }

    fn imm_slot(&mut self, s: ImmSlot) {
        self.u8(match s {
            ImmSlot::Data => 0,
            ImmSlot::MemOffset => 1,
        });
    }
    fn imm_site(&mut self, site: (usize, ImmSlot)) {
        self.len(site.0);
        self.imm_slot(site.1);
    }
    fn imm_param(&mut self, p: &ImmParam) {
        self.imm_site(p.guest_site);
        self.len(p.extra_guest_sites.len());
        for &s in &p.extra_guest_sites {
            self.imm_site(s);
        }
        self.i64(p.template_value);
        self.len(p.host_sites.len());
        for &(idx, slot, rel) in &p.host_sites {
            self.len(idx);
            self.imm_slot(slot);
            self.u8(match rel {
                ImmRel::Id => 0,
                ImmRel::Neg => 1,
                ImmRel::Not => 2,
            });
        }
    }

    fn rule(&mut self, r: &Rule) {
        self.len(r.guest.len());
        for i in &r.guest {
            self.arm_instr(i);
        }
        self.len(r.host.len());
        for i in &r.host {
            self.x86_instr(i);
        }
        // HashMap: sort by host register index for deterministic bytes.
        let mut pairs: Vec<(Gpr, ArmReg)> = r.host_reg_of.iter().map(|(g, a)| (*g, *a)).collect();
        pairs.sort_by_key(|(g, _)| g.index());
        self.len(pairs.len());
        for (g, a) in pairs {
            self.gpr(g);
            self.arm_reg(a);
        }
        self.len(r.imm_params.len());
        for p in &r.imm_params {
            self.imm_param(p);
        }
        self.u8(r.unemulated_flags);
        self.boolean(r.has_branch);
    }

    fn rule_set(&mut self, rs: &RuleSet) {
        self.boolean(rs.prefer_shorter);
        self.len(rs.len());
        for r in rs.iter() {
            self.rule(r);
        }
        let keys = rs.tombstoned_keys();
        self.len(keys.len());
        for k in keys {
            self.u64(k);
        }
    }

    fn cache(&mut self, cache: &VerifyCache) {
        let mut entries: Vec<(&str, &VerifyOutcome)> = cache.iter().collect();
        entries.sort_by_key(|(sig, _)| *sig);
        self.len(entries.len());
        for (sig, outcome) in entries {
            self.string(sig);
            match outcome {
                VerifyOutcome::Learned(r) => {
                    self.u8(0);
                    self.rule(r);
                }
                VerifyOutcome::Failed(f) => {
                    self.u8(1);
                    match f {
                        VerifyFail::Registers => self.u8(0),
                        VerifyFail::Memory => self.u8(1),
                        VerifyFail::Branch => self.u8(2),
                        VerifyFail::Other(why) => {
                            self.u8(3);
                            self.string(why);
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

struct R<'a> {
    buf: &'a [u8],
    pos: usize,
}

type Res<T> = Result<T, DbError>;

impl R<'_> {
    fn bytes(&mut self, n: usize) -> Res<&[u8]> {
        if self.buf.len() - self.pos < n {
            return Err(DbError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
    fn u8(&mut self) -> Res<u8> {
        Ok(self.bytes(1)?[0])
    }
    fn boolean(&mut self) -> Res<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DbError::Corrupt("bad bool")),
        }
    }
    fn u32(&mut self) -> Res<u32> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().expect("4 bytes")))
    }
    fn i32(&mut self) -> Res<i32> {
        Ok(i32::from_le_bytes(self.bytes(4)?.try_into().expect("4 bytes")))
    }
    fn u64(&mut self) -> Res<u64> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().expect("8 bytes")))
    }
    fn i64(&mut self) -> Res<i64> {
        Ok(i64::from_le_bytes(self.bytes(8)?.try_into().expect("8 bytes")))
    }
    fn len(&mut self) -> Res<usize> {
        let n = self.u32()? as usize;
        // A length can never exceed the bytes that remain; this bounds
        // allocations against a corrupt (but checksum-colliding) count.
        if n > self.buf.len() - self.pos {
            return Err(DbError::Corrupt("length exceeds payload"));
        }
        Ok(n)
    }
    fn string(&mut self) -> Res<String> {
        let n = self.len()?;
        let raw = self.bytes(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| DbError::Corrupt("bad utf-8"))
    }

    fn pick<T: Copy>(&mut self, all: &[T], what: &'static str) -> Res<T> {
        let tag = self.u8()? as usize;
        all.get(tag).copied().ok_or(DbError::Corrupt(what))
    }
    fn arm_reg(&mut self) -> Res<ArmReg> {
        self.pick(&ArmReg::ALL, "bad arm reg")
    }
    fn gpr(&mut self) -> Res<Gpr> {
        self.pick(&Gpr::ALL, "bad gpr")
    }
    fn cond(&mut self) -> Res<Cond> {
        self.pick(&Cond::ALL, "bad cond")
    }
    fn dp_op(&mut self) -> Res<DpOp> {
        self.pick(&DpOp::ALL, "bad dp op")
    }
    fn alu_op(&mut self) -> Res<AluOp> {
        self.pick(&AluOp::ALL, "bad alu op")
    }
    fn cc(&mut self) -> Res<Cc> {
        self.pick(&Cc::ALL, "bad cc")
    }
    fn width(&mut self) -> Res<Width> {
        self.pick(&Width::ALL, "bad width")
    }
    fn shift(&mut self) -> Res<Shift> {
        let tag = self.u8()?;
        let a = self.u8()?;
        Ok(match tag {
            0 => Shift::Lsl(a),
            1 => Shift::Lsr(a),
            2 => Shift::Asr(a),
            3 => Shift::Ror(a),
            _ => return Err(DbError::Corrupt("bad shift")),
        })
    }
    fn operand2(&mut self) -> Res<Operand2> {
        Ok(match self.u8()? {
            0 => Operand2::Imm(self.u32()?),
            1 => Operand2::Reg(self.arm_reg()?),
            2 => Operand2::RegShift(self.arm_reg()?, self.shift()?),
            _ => return Err(DbError::Corrupt("bad operand2")),
        })
    }
    fn addr_mode(&mut self) -> Res<AddrMode> {
        Ok(match self.u8()? {
            0 => AddrMode::Imm(self.arm_reg()?, self.i32()?),
            1 => AddrMode::Reg(self.arm_reg()?, self.arm_reg()?),
            2 => AddrMode::RegShift(self.arm_reg()?, self.arm_reg()?, self.u8()?),
            _ => return Err(DbError::Corrupt("bad addr mode")),
        })
    }

    fn arm_instr(&mut self) -> Res<ArmInstr> {
        Ok(match self.u8()? {
            0 => ArmInstr::Dp {
                op: self.dp_op()?,
                rd: self.arm_reg()?,
                rn: self.arm_reg()?,
                op2: self.operand2()?,
                set_flags: self.boolean()?,
                cond: self.cond()?,
            },
            1 => ArmInstr::Mul {
                rd: self.arm_reg()?,
                rn: self.arm_reg()?,
                rm: self.arm_reg()?,
                set_flags: self.boolean()?,
                cond: self.cond()?,
            },
            2 => ArmInstr::Ldr {
                rt: self.arm_reg()?,
                addr: self.addr_mode()?,
                width: self.width()?,
                signed: self.boolean()?,
                cond: self.cond()?,
            },
            3 => ArmInstr::Str {
                rt: self.arm_reg()?,
                addr: self.addr_mode()?,
                width: self.width()?,
                cond: self.cond()?,
            },
            4 => ArmInstr::B { offset: self.i32()?, cond: self.cond()? },
            5 => ArmInstr::Bl { offset: self.i32()?, cond: self.cond()? },
            6 => ArmInstr::Bx { rm: self.arm_reg()?, cond: self.cond()? },
            7 => ArmInstr::Svc { imm: self.u32()?, cond: self.cond()? },
            _ => return Err(DbError::Corrupt("bad arm instr tag")),
        })
    }

    fn x86_mem(&mut self) -> Res<X86Mem> {
        let base = match self.u8()? {
            0 => None,
            1 => Some(self.gpr()?),
            _ => return Err(DbError::Corrupt("bad mem base tag")),
        };
        let index = match self.u8()? {
            0 => None,
            1 => Some((self.gpr()?, self.u8()?)),
            _ => return Err(DbError::Corrupt("bad mem index tag")),
        };
        Ok(X86Mem { base, index, disp: self.i32()? })
    }
    fn operand(&mut self) -> Res<Operand> {
        Ok(match self.u8()? {
            0 => Operand::Reg(self.gpr()?),
            1 => Operand::Imm(self.i32()?),
            2 => Operand::Mem(self.x86_mem()?),
            _ => return Err(DbError::Corrupt("bad operand")),
        })
    }

    fn x86_instr(&mut self) -> Res<X86Instr> {
        Ok(match self.u8()? {
            0 => X86Instr::Mov { dst: self.operand()?, src: self.operand()? },
            1 => X86Instr::Alu { op: self.alu_op()?, dst: self.operand()?, src: self.operand()? },
            2 => X86Instr::Lea { dst: self.gpr()?, addr: self.x86_mem()? },
            3 => X86Instr::Imul { dst: self.gpr()?, src: self.operand()? },
            4 => X86Instr::Shift {
                op: match self.u8()? {
                    0 => ShiftOp::Shl,
                    1 => ShiftOp::Shr,
                    2 => ShiftOp::Sar,
                    _ => return Err(DbError::Corrupt("bad shift op")),
                },
                dst: self.operand()?,
                count: self.u8()?,
            },
            5 => X86Instr::Un {
                op: match self.u8()? {
                    0 => UnOp::Neg,
                    1 => UnOp::Not,
                    2 => UnOp::Inc,
                    3 => UnOp::Dec,
                    _ => return Err(DbError::Corrupt("bad un op")),
                },
                dst: self.operand()?,
            },
            6 => X86Instr::Movx {
                sign: self.boolean()?,
                width: self.width()?,
                dst: self.gpr()?,
                src: self.operand()?,
            },
            7 => {
                X86Instr::MovStore { width: self.width()?, src: self.gpr()?, dst: self.x86_mem()? }
            }
            8 => X86Instr::Setcc { cc: self.cc()?, dst: self.gpr()? },
            9 => X86Instr::Jcc { cc: self.cc()?, target: self.i32()? },
            10 => X86Instr::Jmp { target: self.i32()? },
            11 => X86Instr::JmpInd { src: self.operand()? },
            12 => X86Instr::Call { target: self.i32()? },
            13 => X86Instr::Ret,
            14 => X86Instr::Push { src: self.operand()? },
            15 => X86Instr::Pop { dst: self.operand()? },
            16 => X86Instr::Pushfd,
            17 => X86Instr::Popfd,
            18 => X86Instr::Halt,
            19 => X86Instr::ChainJmp { block: self.u32()? },
            20 => X86Instr::Trap,
            _ => return Err(DbError::Corrupt("bad x86 instr tag")),
        })
    }

    fn imm_slot(&mut self) -> Res<ImmSlot> {
        Ok(match self.u8()? {
            0 => ImmSlot::Data,
            1 => ImmSlot::MemOffset,
            _ => return Err(DbError::Corrupt("bad imm slot")),
        })
    }
    fn imm_site(&mut self) -> Res<(usize, ImmSlot)> {
        Ok((self.len()?, self.imm_slot()?))
    }
    fn imm_param(&mut self) -> Res<ImmParam> {
        let guest_site = self.imm_site()?;
        let n_extra = self.len()?;
        let mut extra_guest_sites = Vec::with_capacity(n_extra);
        for _ in 0..n_extra {
            extra_guest_sites.push(self.imm_site()?);
        }
        let template_value = self.i64()?;
        let n_host = self.len()?;
        let mut host_sites = Vec::with_capacity(n_host);
        for _ in 0..n_host {
            let idx = self.len()?;
            let slot = self.imm_slot()?;
            let rel = match self.u8()? {
                0 => ImmRel::Id,
                1 => ImmRel::Neg,
                2 => ImmRel::Not,
                _ => return Err(DbError::Corrupt("bad imm rel")),
            };
            host_sites.push((idx, slot, rel));
        }
        Ok(ImmParam { guest_site, extra_guest_sites, template_value, host_sites })
    }

    fn rule(&mut self) -> Res<Rule> {
        let n_guest = self.len()?;
        let mut guest = Vec::with_capacity(n_guest);
        for _ in 0..n_guest {
            guest.push(self.arm_instr()?);
        }
        let n_host = self.len()?;
        let mut host = Vec::with_capacity(n_host);
        for _ in 0..n_host {
            host.push(self.x86_instr()?);
        }
        let n_regs = self.len()?;
        let mut host_reg_of = HashMap::with_capacity(n_regs);
        for _ in 0..n_regs {
            let g = self.gpr()?;
            let a = self.arm_reg()?;
            host_reg_of.insert(g, a);
        }
        let n_params = self.len()?;
        let mut imm_params = Vec::with_capacity(n_params);
        for _ in 0..n_params {
            imm_params.push(self.imm_param()?);
        }
        let unemulated_flags = self.u8()?;
        let has_branch = self.boolean()?;
        Ok(Rule { guest, host, host_reg_of, imm_params, unemulated_flags, has_branch })
    }

    fn rule_set(&mut self) -> Res<RuleSet> {
        let prefer_shorter = self.boolean()?;
        let mut rs = if prefer_shorter { RuleSet::new() } else { RuleSet::new_first_found() };
        let n = self.len()?;
        for _ in 0..n {
            let rule = self.rule()?;
            // The source set was deduplicated, so every serialized rule
            // must insert cleanly; a collision means the payload lies.
            if !rs.insert(rule) {
                return Err(DbError::Corrupt("duplicate rule"));
            }
        }
        let n_tomb = self.len()?;
        for _ in 0..n_tomb {
            let key = self.u64()?;
            rs.tombstone(key);
        }
        Ok(rs)
    }

    fn cache(&mut self) -> Res<VerifyCache> {
        let n = self.len()?;
        let mut cache = VerifyCache::new();
        for _ in 0..n {
            let sig = self.string()?;
            let outcome = match self.u8()? {
                0 => VerifyOutcome::Learned(self.rule()?),
                1 => VerifyOutcome::Failed(match self.u8()? {
                    0 => VerifyFail::Registers,
                    1 => VerifyFail::Memory,
                    2 => VerifyFail::Branch,
                    3 => VerifyFail::Other(intern_reason(&self.string()?)),
                    _ => return Err(DbError::Corrupt("bad verify fail")),
                }),
                _ => return Err(DbError::Corrupt("bad outcome tag")),
            };
            cache.insert(sig, outcome);
        }
        Ok(cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::REASON_SOLVER_BUDGET;
    use ldbt_arm::ArmInstr as AI;
    use ldbt_x86::X86Instr as XI;

    fn imm_rule() -> Rule {
        Rule {
            guest: vec![AI::dp(DpOp::Eor, ArmReg::R0, ArmReg::R0, Operand2::Imm(3))],
            host: vec![XI::alu_ri(AluOp::Xor, Gpr::Ecx, 3)],
            host_reg_of: [(Gpr::Ecx, ArmReg::R0)].into_iter().collect(),
            imm_params: vec![ImmParam {
                guest_site: (0, ImmSlot::Data),
                extra_guest_sites: vec![(0, ImmSlot::MemOffset)],
                template_value: 3,
                host_sites: vec![(0, ImmSlot::Data, ImmRel::Neg)],
            }],
            unemulated_flags: 0b1010,
            has_branch: false,
        }
    }

    fn mem_rule() -> Rule {
        Rule {
            guest: vec![
                AI::ldr(ArmReg::R1, AddrMode::Imm(ArmReg::R2, 8)),
                AI::dps(DpOp::Add, ArmReg::R1, ArmReg::R1, Operand2::Reg(ArmReg::R3)),
                AI::Str {
                    rt: ArmReg::R1,
                    addr: AddrMode::Reg(ArmReg::R2, ArmReg::R4),
                    width: Width::W16,
                    cond: Cond::Al,
                },
            ],
            host: vec![
                XI::Movx {
                    sign: true,
                    width: Width::W16,
                    dst: Gpr::Eax,
                    src: Operand::Mem(X86Mem {
                        base: Some(Gpr::Ebx),
                        index: Some((Gpr::Esi, 2)),
                        disp: -4,
                    }),
                },
                XI::Alu {
                    op: AluOp::Add,
                    dst: Operand::Reg(Gpr::Eax),
                    src: Operand::Reg(Gpr::Edi),
                },
                XI::Jcc { cc: Cc::Ne, target: 1 },
                XI::MovStore {
                    width: Width::W16,
                    src: Gpr::Eax,
                    dst: X86Mem::base_disp(Gpr::Ebx, 12),
                },
            ],
            host_reg_of: [
                (Gpr::Eax, ArmReg::R1),
                (Gpr::Ebx, ArmReg::R2),
                (Gpr::Edi, ArmReg::R3),
                (Gpr::Esi, ArmReg::R4),
            ]
            .into_iter()
            .collect(),
            imm_params: vec![],
            unemulated_flags: 0,
            has_branch: true,
        }
    }

    fn sample_db() -> (RuleSet, VerifyCache) {
        let mut rs = RuleSet::new();
        assert!(rs.insert(imm_rule()));
        assert!(rs.insert(mem_rule()));
        rs.tombstone(imm_rule().stable_key());
        let mut cache = VerifyCache::new();
        cache.insert("sig-learned".into(), VerifyOutcome::Learned(mem_rule()));
        cache.insert("sig-regs".into(), VerifyOutcome::Failed(VerifyFail::Registers));
        cache.insert("sig-mem".into(), VerifyOutcome::Failed(VerifyFail::Memory));
        cache.insert("sig-branch".into(), VerifyOutcome::Failed(VerifyFail::Branch));
        cache.insert(
            "sig-known".into(),
            VerifyOutcome::Failed(VerifyFail::Other(REASON_SOLVER_BUDGET)),
        );
        cache.insert(
            "sig-novel".into(),
            VerifyOutcome::Failed(VerifyFail::Other("symexec: unsupported widget")),
        );
        (rs, cache)
    }

    #[test]
    fn round_trip_is_byte_identical_and_behavior_preserving() {
        let (rs, cache) = sample_db();
        let bytes = to_bytes(&rs, &cache);
        let db = from_bytes(&bytes).expect("round trip loads");
        // Re-serializing the loaded database reproduces the exact bytes:
        // structure, iteration order, tombstones, and memo entries all
        // survived.
        assert_eq!(to_bytes(&db.rules, &db.cache), bytes);
        // Behavior: same size, same tombstones, same rules per key.
        assert_eq!(db.rules.len(), rs.len());
        assert_eq!(db.rules.tombstoned_keys(), rs.tombstoned_keys());
        assert_eq!(db.rules.prefer_shorter, rs.prefer_shorter);
        for r in rs.iter() {
            assert_eq!(db.rules.find_by_key(r.stable_key()), Some(r));
        }
        // Tombstoned rules stay quarantined after a reload.
        assert!(db.rules.is_tombstoned(imm_rule().stable_key()));
        assert!(db.rules.lookup(&imm_rule().guest).is_none());
        assert!(db.rules.lookup(&mem_rule().guest).is_some());
        // Memo cache content survives, including interned Other reasons.
        assert_eq!(db.cache.len(), cache.len());
        assert!(matches!(
            db.cache.get("sig-known"),
            Some(VerifyOutcome::Failed(VerifyFail::Other(s))) if *s == REASON_SOLVER_BUDGET
        ));
        assert!(matches!(
            db.cache.get("sig-novel"),
            Some(VerifyOutcome::Failed(VerifyFail::Other("symexec: unsupported widget")))
        ));
        assert!(
            matches!(db.cache.get("sig-learned"), Some(VerifyOutcome::Learned(r)) if *r == mem_rule())
        );
    }

    #[test]
    fn serialization_is_deterministic() {
        let (rs, cache) = sample_db();
        assert_eq!(to_bytes(&rs, &cache), to_bytes(&rs, &cache));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let (rs, cache) = sample_db();
        let mut bytes = to_bytes(&rs, &cache);
        bytes[0] = b'X';
        assert!(matches!(from_bytes(&bytes), Err(DbError::BadMagic)));
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let (rs, cache) = sample_db();
        let mut bytes = to_bytes(&rs, &cache);
        bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        assert!(matches!(from_bytes(&bytes), Err(DbError::Version(v)) if v == FORMAT_VERSION + 1));
    }

    #[test]
    fn fingerprint_mismatch_is_rejected() {
        let (rs, cache) = sample_db();
        let mut bytes = to_bytes(&rs, &cache);
        bytes[12] ^= 0xff;
        assert!(matches!(from_bytes(&bytes), Err(DbError::Fingerprint { .. })));
    }

    #[test]
    fn corrupt_payload_is_rejected() {
        let (rs, cache) = sample_db();
        let bytes = to_bytes(&rs, &cache);
        // Flip one payload byte: the checksum catches it.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert!(matches!(from_bytes(&flipped), Err(DbError::Corrupt(_))));
        // Fix up the checksum over a corrupted payload: decoding still
        // rejects structurally invalid bytes (here, an enum tag driven
        // out of range).
        let mut retagged = bytes.clone();
        retagged[37] = 0xee; // inside the first rule's encoding
        let sum = super::checksum(&retagged[36..]);
        retagged[28..36].copy_from_slice(&sum.to_le_bytes());
        assert!(from_bytes(&retagged).is_err());
    }

    #[test]
    fn truncated_file_is_rejected() {
        let (rs, cache) = sample_db();
        let bytes = to_bytes(&rs, &cache);
        for cut in [0, 4, 12, 30, 36, bytes.len() / 2, bytes.len() - 1] {
            assert!(from_bytes(&bytes[..cut]).is_err(), "a file cut to {cut} bytes must not load");
        }
    }

    #[test]
    fn save_and_load_round_trip_through_disk() {
        let (rs, cache) = sample_db();
        let dir = std::env::temp_dir().join(format!("ldbt-db-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("rules.db");
        save(&path, &rs, &cache).expect("save succeeds");
        let db = load(&path).expect("load succeeds");
        assert_eq!(to_bytes(&db.rules, &db.cache), to_bytes(&rs, &cache));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let path = Path::new("/nonexistent/ldbt-rules.db");
        assert!(matches!(load(path), Err(DbError::Io(_))));
    }

    #[test]
    fn env_path_requires_a_nonempty_value() {
        // Not set in the test environment (tier1 runs tests without it).
        if std::env::var("LDBT_RULEDB").is_err() {
            assert!(env_path().is_none());
        }
    }
}
