#![forbid(unsafe_code)]
//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset of proptest's API its property tests use:
//! [`strategy::Strategy`] with `prop_map`/`prop_recursive`/`boxed`,
//! strategies for integer ranges and tuples, [`any`], [`Just`],
//! [`collection::vec`], `prop_oneof!`, `proptest!`, and the
//! `prop_assert*` macros.
//!
//! Differences from upstream: generation is a fixed deterministic stream
//! per test (seeded from the test name, overridable with
//! `PROPTEST_SEED`), there is **no shrinking** (the failing case is
//! printed verbatim), and `proptest-regressions` files are not consulted.

use std::rc::Rc;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic generation state and failure reporting.
pub mod test_runner {
    /// Deterministic splitmix64 generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded from a test name (stable across runs); `PROPTEST_SEED`
        /// overrides for reproducing exploratory runs.
        pub fn deterministic(name: &str) -> TestRng {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x100_0000_01b3);
            }
            if let Ok(s) = std::env::var("PROPTEST_SEED") {
                if let Ok(v) = s.parse::<u64>() {
                    seed ^= v;
                }
            }
            TestRng { state: seed }
        }

        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    /// Prints the generated inputs if the test body panics (in lieu of
    /// shrinking).
    pub struct CaseGuard {
        case: u32,
        inputs: Option<Vec<(&'static str, String)>>,
    }

    impl CaseGuard {
        /// Arm the guard for one case.
        pub fn new(case: u32, inputs: Vec<(&'static str, String)>) -> CaseGuard {
            CaseGuard { case, inputs: Some(inputs) }
        }

        /// Disarm after the body succeeded.
        pub fn defuse(mut self) {
            self.inputs = None;
        }
    }

    impl Drop for CaseGuard {
        fn drop(&mut self) {
            if std::thread::panicking() {
                if let Some(inputs) = &self.inputs {
                    eprintln!("proptest: failing case #{}:", self.case);
                    for (name, value) in inputs {
                        eprintln!("  {name} = {value}");
                    }
                }
            }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;
    use super::Rc;

    /// A way to generate values of `Self::Value`.
    pub trait Strategy: Clone {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            F: Fn(Self::Value) -> U + Clone,
        {
            Map { inner: self, f }
        }

        /// Keep only values satisfying `pred` (regenerates on rejection;
        /// panics after 1000 consecutive rejections).
        fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
        where
            F: Fn(&Self::Value) -> bool + Clone,
        {
            Filter { inner: self, reason, pred }
        }

        /// Erase the concrete type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: 'static,
        {
            BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
        }

        /// Build recursive structures: `recurse` wraps the strategy for
        /// one more level; generation bottoms out at `self` (the leaf).
        /// `_desired_size` and `_branch` are accepted for API parity.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let mut strat = self.clone().boxed();
            for _ in 0..depth {
                let layer = recurse(strat).boxed();
                let leaf = self.clone().boxed();
                // 1-in-4 leaf keeps sizes varied without starving depth.
                strat = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                    if rng.next_u64().is_multiple_of(4) {
                        leaf.generate(rng)
                    } else {
                        layer.generate(rng)
                    }
                }));
            }
            strat
        }
    }

    /// A type-erased, reference-counted strategy.
    pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    impl<T: 'static> BoxedStrategy<T> {
        /// Uniform choice among alternatives (backs `prop_oneof!`).
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn union(options: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                let i = (rng.next_u64() % options.len() as u64) as usize;
                options[i].generate(rng)
            }))
        }
    }

    /// [`Strategy::prop_map`] adapter.
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U + Clone,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// [`Strategy::prop_filter`] adapter.
    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool + Clone,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 consecutive values: {}", self.reason);
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Types with a canonical full-range strategy (see [`super::any`]).
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy for [`Arbitrary`] types.
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(std::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + off) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$i:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A / 0);
    impl_tuple_strategy!(A / 0, B / 1);
    impl_tuple_strategy!(A / 0, B / 1, C / 2);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Element counts accepted by [`vec`]: a fixed size or a range.
    #[derive(Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy for `Vec`s of `element` values with a size in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo).max(1) as u64;
            let n = self.size.lo + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Generates `None` about a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// The strategy for an [`strategy::Arbitrary`] type's full value range.
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use super::any;
    pub use super::collection;
    pub use super::strategy::{BoxedStrategy, Just, Strategy};
    pub use super::ProptestConfig;
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice among strategies (no weights; boxes each alternative).
#[macro_export]
macro_rules! prop_oneof {
    ($($alt:expr),+ $(,)?) => {
        $crate::strategy::BoxedStrategy::union(
            vec![$($crate::strategy::Strategy::boxed($alt)),+]
        )
    };
}

/// Like `assert!` (no early-return semantics: failures panic).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Like `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Like `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __guard = $crate::test_runner::CaseGuard::new(
                        __case,
                        vec![$((stringify!($arg), format!("{:?}", &$arg))),+],
                    );
                    { $body }
                    __guard.defuse();
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps() {
        let mut rng = crate::test_runner::TestRng::deterministic("t");
        let s = (0u8..4, 1u8..32).prop_map(|(a, b)| (a as u32) * 100 + b as u32);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v % 100 >= 1 && v % 100 < 32 && v / 100 < 4);
        }
    }

    #[test]
    fn oneof_covers_all_alternatives() {
        let mut rng = crate::test_runner::TestRng::deterministic("t2");
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn recursive_bottoms_out() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf,
            Node(Box<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf => 0,
                T::Node(i) => 1 + depth(i),
            }
        }
        let mut rng = crate::test_runner::TestRng::deterministic("t3");
        let s = Just(T::Leaf)
            .boxed()
            .prop_recursive(3, 8, 1, |inner| inner.prop_map(|t| T::Node(Box::new(t))));
        for _ in 0..100 {
            assert!(depth(&s.generate(&mut rng)) <= 3);
        }
    }

    #[test]
    fn vec_sizes() {
        let mut rng = crate::test_runner::TestRng::deterministic("t4");
        let fixed = crate::collection::vec(any::<u32>(), 8);
        assert_eq!(fixed.generate(&mut rng).len(), 8);
        let ranged = crate::collection::vec(any::<u32>(), 1..8);
        for _ in 0..50 {
            let n = ranged.generate(&mut rng).len();
            assert!((1..8).contains(&n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_generates_cases(x in 0u32..10, flag in any::<bool>()) {
            prop_assert!(x < 10);
            let _ = flag;
        }
    }
}
