//! The Figure 9 scenario in miniature: rules learned from LLVM-style
//! binaries applied to a guest built by a *different* compiler
//! (GCC-style), demonstrating the learning approach's compiler
//! insensitivity.
//!
//! ```sh
//! cargo run --release --example cross_compiler -- hmmer
//! ```

use ldbt_core::compiler::Options;
use ldbt_core::experiment::{learn_all, loo_rules};
use ldbt_core::workloads::Workload;
use ldbt_core::{run_benchmark, EngineKind};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "hmmer".to_string());
    println!("learning rules from LLVM-style compilations of the other 11 programs...");
    let all = learn_all(&Options::o2()).expect("suite compiles");
    let rules = loo_rules(&all, &name);
    println!("  {} rules in the leave-one-out set", rules.len());

    for (label, guest) in [("LLVM-style guest", Options::o2()), ("GCC-style guest", Options::gcc())]
    {
        let base = run_benchmark(&name, Workload::Ref, EngineKind::Tcg, &guest, None);
        let ours = run_benchmark(&name, Workload::Ref, EngineKind::Rules, &guest, Some(&rules));
        assert_eq!(base.checksum, ours.checksum, "engines agree");
        println!(
            "{label:<17}: speedup {:.2}x  static coverage {:.1}%  dynamic coverage {:.1}%",
            ours.speedup_over(&base),
            ours.stats.static_coverage() * 100.0,
            ours.stats.dynamic_coverage() * 100.0,
        );
    }
    println!("(paper: 1.25x for LLVM guests, 1.21x for GCC guests — insensitive to the");
    println!(" compiler that produced the translated binary)");
}
