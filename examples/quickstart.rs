//! Quickstart: learn a translation rule from source code and watch the
//! DBT use it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ldbt_core::compiler::{link::build_arm_image, Options};
use ldbt_core::dbt::engine::{RunOutcome, Translator};
use ldbt_core::dbt::Engine;
use ldbt_core::learn::pipeline::learn_from_source;
use std::sync::Arc;

fn main() {
    // 1. A training program: the same source is compiled for the ARM
    //    guest and the x86 host, and rules are learned per source line.
    let training = "
int f(int a, int b) {
  int x = a + b - 1;
  int y = x ^ 255;
  int z = y + y * 3;
  return z;
}
int main() { return f(40, 3); }
";
    let report = learn_from_source("training", training, &Options::o2()).unwrap();
    println!("learned {} rules from the training program:", report.rules.len());
    for rule in report.rules.iter() {
        println!("{rule}");
    }

    // 2. A *different* program reusing the same idioms. The DBT translates
    //    it with the learned rules (note: rules are fully parameterized —
    //    registers and immediates differ from the training program).
    let target = "
int g(int p, int q) {
  int u = p + q - 7;
  int v = u ^ 99;
  int w = v + v * 3;
  return w;
}
int main() { return g(100, 7); }
";
    let image = build_arm_image(target, &Options::o2()).unwrap();

    let mut baseline = Engine::new(&image, Translator::Tcg);
    assert_eq!(baseline.run(10_000_000), RunOutcome::Halted);

    let mut enhanced = Engine::new(&image, Translator::Rules(Arc::new(report.rules)));
    assert_eq!(enhanced.run(10_000_000), RunOutcome::Halted);

    assert_eq!(
        baseline.guest_reg(ldbt_arm::ArmReg::R0),
        enhanced.guest_reg(ldbt_arm::ArmReg::R0),
        "both engines must agree"
    );
    println!("result: {} (same under both engines)", enhanced.guest_reg(ldbt_arm::ArmReg::R0));
    println!(
        "host instructions: {} (TCG baseline) vs {} (rule-enhanced)",
        baseline.stats.exec.host_instrs, enhanced.stats.exec.host_instrs
    );
    println!("static rule coverage: {:.0}%", enhanced.stats.static_coverage() * 100.0);
}
