//! A command-line cross-ISA emulator: compile a mini-C program for the
//! ARM guest and run it under a chosen translation engine.
//!
//! ```sh
//! # Run a built-in demo under every engine and compare:
//! cargo run --release --example emulator
//!
//! # Emulate your own program (mini-C subset):
//! cargo run --release --example emulator -- path/to/prog.c rules
//! ```
//!
//! Engines: `tcg` (QEMU-style baseline), `rules` (learned-rule enhanced,
//! rules trained on the synthetic SPEC suite), `jit` (HQEMU-style).

use ldbt_core::compiler::{link::build_arm_image, Options};
use ldbt_core::dbt::engine::{RunOutcome, Translator};
use ldbt_core::dbt::Engine;
use ldbt_core::learn_suite;
use std::sync::Arc;

const DEMO: &str = "
int primes;
int is_prime(int n) {
  if (n < 2) { return 0; }
  for (int d = 2; d * d <= n; d += 1) {
    // The mini-C subset has no division (like early ARM cores): test
    // divisibility by repeated subtraction.
    int q = n;
    while (q >= d) { q -= d; }
    if (q == 0) { return 0; }
  }
  return 1;
}
int main() {
  primes = 0;
  for (int n = 2; n < 200; n += 1) {
    primes += is_prime(n);
  }
  return primes;
}
";

fn engine_of(name: &str, rules: &Arc<ldbt_core::learn::RuleSet>) -> Translator {
    match name {
        "tcg" => Translator::Tcg,
        "jit" => Translator::Jit,
        "rules" => Translator::Rules(Arc::clone(rules)),
        other => panic!("unknown engine `{other}` (use tcg / rules / jit)"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let source = match args.get(1) {
        Some(path) => std::fs::read_to_string(path).expect("readable source file"),
        None => DEMO.to_string(),
    };
    let engines: Vec<&str> = match args.get(2) {
        Some(e) => vec![e.as_str()],
        None => vec!["tcg", "rules", "jit"],
    };

    println!("learning rules from the synthetic SPEC suite...");
    let (rules, _) = learn_suite(&Options::o2(), None).expect("suite compiles");
    println!("  {} rules available", rules.len());
    let rules = Arc::new(rules);

    let image = build_arm_image(&source, &Options::o2()).expect("program compiles");
    println!("guest image: {} instructions, entry {:#x}", image.instr_count(), image.entry);

    for engine in engines {
        let mut e = Engine::new(&image, engine_of(engine, &rules));
        let outcome = e.run(3_000_000_000);
        assert_eq!(outcome, RunOutcome::Halted, "{engine} did not halt");
        println!(
            "[{engine:>5}] r0 = {:>10}  guest instrs {:>9}  host instrs {:>9}  \
             cycles {:>10} (translation {:>8})  coverage {:>5.1}%",
            e.guest_reg(ldbt_arm::ArmReg::R0),
            e.stats.guest_dyn(),
            e.stats.exec.host_instrs,
            e.stats.total_cycles(),
            e.stats.exec.translation_cycles,
            e.stats.dynamic_coverage() * 100.0,
        );
    }
}
