//! Inspect the translation rules learned from a suite benchmark:
//! templates, parameterization, flag caveats, and length histogram.
//!
//! ```sh
//! cargo run --release --example rule_inspector -- gcc
//! cargo run --release --example rule_inspector -- mcf --branches
//! ```

use ldbt_core::compiler::Options;
use ldbt_core::learn::pipeline::learn_from_source;
use ldbt_core::workloads::{benchmark, source, Workload};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("mcf");
    let only_branches = args.iter().any(|a| a == "--branches");
    let b = benchmark(name).unwrap_or_else(|| {
        eprintln!("unknown benchmark `{name}`; pick one of:");
        for b in &ldbt_core::workloads::SUITE {
            eprintln!("  {}", b.name);
        }
        std::process::exit(1);
    });

    let src = source(b, Workload::Ref);
    let report = learn_from_source(name, &src, &Options::o2()).unwrap();
    let s = &report.stats;
    println!("== learning report for {name} ==");
    println!(
        "snippets {} | preparation fails CI {} PI {} MB {} | parameterization fails {} | \
         verification fails {} | rules {} ({} after dedup)",
        s.total,
        s.prep_ci,
        s.prep_pi,
        s.prep_mb,
        s.par_num + s.par_name + s.par_failg,
        s.ver_rg + s.ver_mm + s.ver_br + s.ver_other,
        s.rules,
        report.rules.len()
    );
    println!("learning time: {:?} ({:?} in verification)", s.learn_time, s.verify_time);

    let hist = report.rules.length_histogram();
    let mut lens: Vec<_> = hist.iter().collect();
    lens.sort();
    print!("rule length histogram: ");
    for (len, n) in lens {
        print!("{len}→{n}  ");
    }
    println!();
    println!();
    for (i, rule) in report.rules.iter().enumerate() {
        if only_branches && !rule.has_branch {
            continue;
        }
        println!("--- rule {i} ({} guest → {} host)", rule.len(), rule.host.len());
        print!("{rule}");
        if !rule.imm_params.is_empty() {
            println!("  parameterized immediates: {}", rule.imm_params.len());
        }
    }
}
