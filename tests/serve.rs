//! Multi-tenant serving invariants (DESIGN.md §15).
//!
//! Two families:
//!
//! * **Concurrent determinism** — N tenants running the same program
//!   concurrently must each produce the bit-identical final guest state
//!   *and* the bit-identical engine counters of a solo run: tenants
//!   share only the immutable rule generation, so concurrency is not
//!   allowed to be observable. Checked across the watchdog × superblock
//!   knob matrix.
//! * **Generation publication** — when one tenant's watchdog
//!   quarantines or repairs a rule, the new rule set is published
//!   atomically through the shared [`RuleCell`]: after publication no
//!   tenant — concurrent or later — ever executes the bad rule again.
//!   Driven by the same install-time corruptions (`imm-skew`) as the
//!   `LDBT_FAULT` harness in `tests/fault_injection.rs`.
//!
//! All engines pin their knobs explicitly (`with_watchdog` /
//! `with_fault` / …) so the tier-1 fault matrix, which re-runs the whole
//! test suite under `LDBT_FAULT`/`LDBT_WATCHDOG` environments, cannot
//! perturb these invariants.

use ldbt_compiler::{link::build_arm_image, Options};
use ldbt_core::serve::{serve_with, ServeProgram};
use ldbt_dbt::engine::{RunOutcome, Translator};
use ldbt_dbt::{Engine, RuleCell};
use ldbt_learn::pipeline::learn_from_source;
use ldbt_learn::{corrupt_ruleset, FaultPlan, FaultSite, RuleSet};
use std::sync::Arc;

/// Same rule-friendly program as the fault-injection harness: its
/// learned set is known to contain an imm-parameterized rule for the
/// `imm-skew` corruption to land on.
const SRC: &str = "
int a[16];
int main() {
  int s = 0;
  for (int i = 0; i < 16; i += 1) { a[i] = i * 5 + 1; }
  for (int i = 0; i < 16; i += 1) {
    s = s + a[i];
    s = s - 1;
    s = s ^ 3;
  }
  return s & 0xffff;
}";

fn program() -> ServeProgram {
    let image = build_arm_image(SRC, &Options::o2()).unwrap();
    let mut m = ldbt_arm::ArmMachine::new();
    image.load_into(&mut m.state.mem);
    m.state.regs[15] = image.entry;
    assert_eq!(m.run(50_000_000), ldbt_arm::ArmStop::Halt);
    let want = m.state.reg(ldbt_arm::ArmReg::R0);
    ServeProgram { name: "serve-src".into(), image, want }
}

fn rules() -> RuleSet {
    learn_from_source("serve", SRC, &Options::o2()).expect("learning completes").rules
}

/// N tenants concurrently must be indistinguishable from a solo run:
/// same checksums, same per-tenant counter totals — under every
/// watchdog × superblock combination.
#[test]
fn concurrent_tenants_match_solo_bit_for_bit() {
    let programs = [program()];
    let rules = rules();
    for (wd, sb) in [(None, None), (None, Some(64)), (Some(1), None), (Some(1), Some(64))] {
        let cfg = move |e: Engine| {
            e.with_watchdog(wd).with_superblocks(sb).with_fault(None).with_repair(true)
        };
        let solo = {
            let cell = Arc::new(RuleCell::new(rules.clone()));
            serve_with(&programs, 1, &cell, cfg)
        };
        let cell = Arc::new(RuleCell::new(rules.clone()));
        let multi = serve_with(&programs, 3, &cell, cfg);
        assert_eq!(multi.tenants.len(), 3);
        for t in &multi.tenants {
            assert_eq!(
                t.checksums, solo.tenants[0].checksums,
                "wd={wd:?} sb={sb:?}: concurrent checksum differs from solo"
            );
            assert_eq!(
                t.counters, solo.tenants[0].counters,
                "wd={wd:?} sb={sb:?}: tenant {} counters differ from solo",
                t.tenant
            );
        }
        // Clean rules: the watchdog never fires a mismatch, so no
        // generation is ever published.
        assert_eq!(multi.generation, 0, "wd={wd:?} sb={sb:?}");
        // The aggregate is the exact fold of the tenant blocks.
        assert_eq!(multi.total_guest_instrs(), 3 * solo.total_guest_instrs());
    }
}

/// Pre-corrupt the shared rule set the way the engine's `LDBT_FAULT`
/// install site would (one corruption total — a shared cell must not be
/// re-corrupted per tenant, which is why the tenants themselves run
/// `with_fault(None)`). Returns the victim's stable key.
fn corrupt_seed(rules: &mut RuleSet) -> u64 {
    let plan = FaultPlan { site: FaultSite::ImmSkew, seed: 0 };
    corrupt_ruleset(rules, plan).expect("the learned set has an imm-parameterized rule")
}

/// Concurrent serving over a corrupted shared generation: every tenant
/// samples every rule-covered dispatch, so whichever tenant hits the
/// skew first repairs it and *publishes*; the others adopt the repaired
/// generation at their next dispatcher entry. Everyone's output is
/// correct and the cell's generation has advanced.
#[test]
fn concurrent_repair_publishes_one_generation_for_all() {
    let programs = [program()];
    let mut rules = rules();
    let victim = corrupt_seed(&mut rules);
    let cell = Arc::new(RuleCell::new(rules));
    // Checksum correctness for every tenant is asserted inside serve_with.
    let report = serve_with(&programs, 3, &cell, |e| {
        e.with_watchdog(Some(1)).with_fault(None).with_repair(true)
    });
    assert!(report.generation >= 1, "the repair must be published through the cell");
    let (published, _) = cell.load();
    assert!(
        published.find_by_key(victim).is_some(),
        "repair leaves the (fixed) rule live, not tombstoned"
    );
    let repaired: u64 = report.aggregate.iter().find(|(n, _)| *n == "wd_repaired").unwrap().1;
    assert!(repaired >= 1, "at least one tenant performed the repair");
}

/// The publication half of the tentpole invariant, isolated: tenant A
/// (watchdog on) repairs the corrupted rule and publishes; tenant B —
/// attached to the same cell, watchdog **off**, so it has no safety net
/// of its own — starts after the publication and must still produce the
/// correct result. The bad rule is unreachable for every tenant created
/// after the generation swap.
#[test]
fn later_tenant_without_watchdog_inherits_published_repair() {
    let p = program();
    let mut rules = rules();
    corrupt_seed(&mut rules);
    let cell = Arc::new(RuleCell::new(rules));

    // Tenant A: watchdog every dispatch, repairs and publishes.
    let translator = Translator::Rules(cell.load().0);
    let mut a = Engine::new(&p.image, translator)
        .with_rule_cell(Arc::clone(&cell))
        .with_watchdog(Some(1))
        .with_fault(None)
        .with_repair(true);
    assert_eq!(a.run(50_000_000), RunOutcome::Halted);
    assert_eq!(a.guest_reg(ldbt_arm::ArmReg::R0), p.want);
    assert!(a.stats.wd_repaired() >= 1, "A repaired the skewed rule");
    assert!(cell.generation() >= 1, "the repair was published");

    // Tenant B: no watchdog, same cell, fresh engine. Correct because
    // its translator starts from the published (repaired) generation.
    let translator = Translator::Rules(cell.load().0);
    let mut b = Engine::new(&p.image, translator)
        .with_rule_cell(Arc::clone(&cell))
        .with_watchdog(None)
        .with_fault(None);
    assert_eq!(b.run(50_000_000), RunOutcome::Halted);
    assert_eq!(
        b.guest_reg(ldbt_arm::ArmReg::R0),
        p.want,
        "a tenant attached after publication must never execute the pre-repair rule"
    );
    assert_eq!(b.stats.watchdog_checks(), 0, "B really ran without a watchdog");
    assert!(b.stats.guest_dyn_covered() > 0, "B still translates through rules");
}

/// Same isolation with repair disabled: the conservative tombstone is
/// what gets published, and a later watchdog-less tenant never applies
/// the tombstoned rule.
#[test]
fn later_tenant_inherits_published_tombstone() {
    let p = program();
    let mut rules = rules();
    let victim = corrupt_seed(&mut rules);
    let cell = Arc::new(RuleCell::new(rules));

    let translator = Translator::Rules(cell.load().0);
    let mut a = Engine::new(&p.image, translator)
        .with_rule_cell(Arc::clone(&cell))
        .with_watchdog(Some(1))
        .with_fault(None)
        .with_repair(false);
    assert_eq!(a.run(50_000_000), RunOutcome::Halted);
    assert_eq!(a.guest_reg(ldbt_arm::ArmReg::R0), p.want);
    assert!(a.stats.quarantined_rules() >= 1, "repair-off mismatch tombstones");
    assert!(cell.generation() >= 1);
    let (published, _) = cell.load();
    assert!(published.is_tombstoned(victim), "the tombstone is in the published generation");

    let translator = Translator::Rules(cell.load().0);
    let mut b = Engine::new(&p.image, translator)
        .with_rule_cell(Arc::clone(&cell))
        .with_watchdog(None)
        .with_fault(None);
    assert_eq!(b.run(50_000_000), RunOutcome::Halted);
    assert_eq!(b.guest_reg(ldbt_arm::ArmReg::R0), p.want);
    assert!(
        !b.stats.hit_rules.contains_key(&victim),
        "the tombstoned rule never applies in a tenant attached after publication"
    );
}
