//! Fault-injection harness (`LDBT_FAULT`, `LDBT_WATCHDOG`).
//!
//! Each injection site must degrade gracefully, never abort: a corrupted
//! rule is caught by the watchdog and quarantined, an exhausted solver
//! budget surfaces as recorded `Other` verification failures, a panicking
//! verify worker loses only its item — and in every case the guest's
//! final state is bit-identical to a pure-TCG run (rules are verified or
//! dropped, never trusted blindly).

use ldbt_arm::ArmReg;
use ldbt_compiler::{link::build_arm_image, Options};
use ldbt_dbt::engine::{RunOutcome, Translator};
use ldbt_dbt::Engine;
use ldbt_learn::cache::VerifyCache;
use ldbt_learn::pipeline::{learn_from_source_cached, LearnConfig};
use ldbt_learn::{FaultPlan, FaultSite, RuleSet};
use std::sync::Arc;

/// A small program with rule-friendly inner-loop arithmetic.
const SRC: &str = "
int a[16];
int main() {
  int s = 0;
  for (int i = 0; i < 16; i += 1) { a[i] = i * 5 + 1; }
  for (int i = 0; i < 16; i += 1) {
    s = s + a[i];
    s = s - 1;
    s = s ^ 3;
  }
  return s & 0xffff;
}";

fn clean_config() -> LearnConfig {
    LearnConfig { fault: None, ..LearnConfig::default() }
}

fn learn(config: &LearnConfig) -> (RuleSet, ldbt_learn::LearnStats) {
    let report =
        learn_from_source_cached("fi", SRC, &Options::o2(), config, &mut VerifyCache::new())
            .expect("learning completes");
    (report.rules, report.stats)
}

/// The pure-TCG reference result for `SRC`.
fn tcg_want(image: &ldbt_compiler::ArmImage) -> u32 {
    let mut base = Engine::new(image, Translator::Tcg).with_watchdog(None).with_fault(None);
    assert_eq!(base.run(50_000_000), RunOutcome::Halted);
    base.guest_reg(ArmReg::R0)
}

#[test]
fn clean_watchdog_run_quarantines_nothing() {
    let image = build_arm_image(SRC, &Options::o2()).unwrap();
    let want = tcg_want(&image);
    let (rules, _) = learn(&clean_config());
    let mut e = Engine::new(&image, Translator::Rules(Arc::new(rules)))
        .with_watchdog(Some(1))
        .with_fault(None);
    assert_eq!(e.run(50_000_000), RunOutcome::Halted);
    assert_eq!(e.guest_reg(ArmReg::R0), want, "watchdog must not perturb a clean run");
    assert!(e.stats.guest_dyn_covered() > 0, "rules must actually apply");
    assert!(e.stats.watchdog_checks() > 0, "rule-covered dispatches were sampled");
    assert_eq!(e.stats.quarantined_rules(), 0, "verified rules never mismatch");
}

#[test]
fn rule_corrupt_is_quarantined_and_output_matches_tcg() {
    let image = build_arm_image(SRC, &Options::o2()).unwrap();
    let want = tcg_want(&image);
    let (rules, _) = learn(&clean_config());
    let fault = FaultPlan { site: FaultSite::RuleCorrupt, seed: 0 };
    let mut e = Engine::new(&image, Translator::Rules(Arc::new(rules)))
        .with_watchdog(Some(1))
        .with_fault(Some(fault));
    assert_eq!(e.run(50_000_000), RunOutcome::Halted, "corruption must not abort the run");
    assert_eq!(e.guest_reg(ArmReg::R0), want, "quarantine must restore TCG-identical output");
    assert!(e.stats.watchdog_checks() > 0);
    assert!(
        e.stats.quarantined_rules() >= 1,
        "the corrupted rule application must be caught and tombstoned"
    );
}

/// `imm-skew` corrupts a learned rule's stored immediate relation at
/// install time; the watchdog must catch it, attribute it, and *repair*
/// it — the rule survives (no tombstone) and output matches pure TCG.
#[test]
fn imm_skew_is_repaired_and_output_matches_tcg() {
    let image = build_arm_image(SRC, &Options::o2()).unwrap();
    let want = tcg_want(&image);
    let (rules, _) = learn(&clean_config());
    let fault = FaultPlan { site: FaultSite::ImmSkew, seed: 0 };
    // Pick the seed's victim the same way the engine will, so this test
    // fails loudly (below) if the seed lands on a never-applied rule.
    let mut probe = rules.clone();
    let victim = ldbt_learn::corrupt_ruleset(&mut probe, fault);
    assert!(victim.is_some(), "the learned set has an imm-parameterized rule to skew");
    let mut e = Engine::new(&image, Translator::Rules(Arc::new(rules)))
        .with_watchdog(Some(1))
        .with_fault(Some(fault))
        .with_repair(true);
    assert_eq!(e.run(50_000_000), RunOutcome::Halted, "corruption must not abort the run");
    assert_eq!(e.guest_reg(ArmReg::R0), want, "the repaired run matches pure TCG");
    assert!(
        e.stats.hit_rules.contains_key(&victim.unwrap()),
        "the skewed rule was actually applied"
    );
    assert!(e.stats.watchdog_checks() > 0);
    assert!(e.stats.wd_repaired() >= 1, "the skewed rule must be repaired");
    assert_eq!(e.stats.quarantined_rules(), 0, "repair leaves no tombstone");
}

/// `operand-swap` transposes two register bindings of a learned rule at
/// install time — the complementary repairable corruption: not an
/// immediate relation but the operand mapping itself. `SRC`'s rules are
/// all single-register, so this test adds a reg-reg statement
/// (`s = s ^ i`) that learns an `eor reg0, reg0, reg1` rule with two
/// distinct guest registers to swap.
#[test]
fn operand_swap_is_repaired_and_output_matches_tcg() {
    let src = "
int a[16];
int main() {
  int s = 0;
  for (int i = 0; i < 16; i += 1) { a[i] = i * 5 + 1; }
  for (int i = 0; i < 16; i += 1) {
    s = s + a[i];
    s = s ^ i;
    s = s - 1;
  }
  return s & 0xffff;
}";
    let image = build_arm_image(src, &Options::o2()).unwrap();
    let want = tcg_want(&image);
    let report = learn_from_source_cached(
        "fi-swap",
        src,
        &Options::o2(),
        &clean_config(),
        &mut VerifyCache::new(),
    )
    .expect("learning completes");
    let rules = report.rules;
    let fault = FaultPlan { site: FaultSite::OperandSwap, seed: 0 };
    let mut probe = rules.clone();
    let victim = ldbt_learn::corrupt_ruleset(&mut probe, fault);
    assert!(victim.is_some(), "the learned set has a two-register rule to swap");
    let mut e = Engine::new(&image, Translator::Rules(Arc::new(rules)))
        .with_watchdog(Some(1))
        .with_fault(Some(fault))
        .with_repair(true);
    assert_eq!(e.run(50_000_000), RunOutcome::Halted, "corruption must not abort the run");
    assert_eq!(e.guest_reg(ArmReg::R0), want, "the repaired run matches pure TCG");
    assert!(
        e.stats.hit_rules.contains_key(&victim.unwrap()),
        "the swapped rule was actually applied"
    );
    assert!(e.stats.watchdog_checks() > 0);
    assert!(e.stats.wd_repaired() >= 1, "the swapped rule must be repaired");
    assert_eq!(e.stats.quarantined_rules(), 0, "repair leaves no tombstone");
}

/// With repair explicitly off (`LDBT_REPAIR=0` semantics), the same
/// install-time corruption falls back to today's conservative behavior:
/// every rule in the divergent block is tombstoned, nothing is
/// attributed or repaired, and output still matches pure TCG.
#[test]
fn repair_off_falls_back_to_conservative_quarantine() {
    let image = build_arm_image(SRC, &Options::o2()).unwrap();
    let want = tcg_want(&image);
    let (rules, _) = learn(&clean_config());
    let fault = FaultPlan { site: FaultSite::ImmSkew, seed: 0 };
    let mut e = Engine::new(&image, Translator::Rules(Arc::new(rules)))
        .with_watchdog(Some(1))
        .with_fault(Some(fault))
        .with_repair(false);
    assert_eq!(e.run(50_000_000), RunOutcome::Halted);
    assert_eq!(e.guest_reg(ArmReg::R0), want, "quarantine must restore TCG-identical output");
    assert!(e.stats.quarantined_rules() >= 1, "repair-off mismatch tombstones conservatively");
    assert_eq!(e.stats.wd_attributed(), 0, "no attribution runs with repair off");
    assert_eq!(e.stats.wd_repair_attempts(), 0, "no repair runs with repair off");
    assert_eq!(e.stats.wd_repaired(), 0);
}

#[test]
fn solver_exhaust_degrades_yield_without_abort() {
    let (clean_rules, clean_stats) = learn(&clean_config());
    let fault = FaultPlan { site: FaultSite::SolverExhaust, seed: 0 };
    let config = LearnConfig { fault: Some(fault), ..LearnConfig::default() };
    let (rules, stats) = learn(&config);
    assert!(rules.len() <= clean_rules.len(), "an exhausted solver can only lose rules");
    assert!(
        stats.ver_other >= clean_stats.ver_other,
        "budget exhaustion is recorded as Other failures"
    );
    // Whatever survived is still verified: the DBT result stays exact.
    let image = build_arm_image(SRC, &Options::o2()).unwrap();
    let want = tcg_want(&image);
    let mut e = Engine::new(&image, Translator::Rules(Arc::new(rules)))
        .with_watchdog(Some(1))
        .with_fault(None);
    assert_eq!(e.run(50_000_000), RunOutcome::Halted);
    assert_eq!(e.guest_reg(ArmReg::R0), want);
    assert_eq!(e.stats.quarantined_rules(), 0);
}

#[test]
fn worker_panic_loses_only_its_item() {
    let (clean_rules, _) = learn(&clean_config());
    let fault = FaultPlan { site: FaultSite::WorkerPanic, seed: 3 };
    // Suppress the injected panic's default stderr backtrace.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let config = LearnConfig { fault: Some(fault), isolate: true, ..LearnConfig::default() };
    let (rules, stats) = learn(&config);
    std::panic::set_hook(prev);
    assert!(stats.ver_other >= 1, "the panicked item is recorded as an Other failure");
    assert!(
        clean_rules.len().saturating_sub(rules.len()) <= 1,
        "at most the panicked item's rule is lost ({} vs {})",
        rules.len(),
        clean_rules.len()
    );
    // The surviving set still runs exactly.
    let image = build_arm_image(SRC, &Options::o2()).unwrap();
    let want = tcg_want(&image);
    let mut e = Engine::new(&image, Translator::Rules(Arc::new(rules)))
        .with_watchdog(Some(1))
        .with_fault(None);
    assert_eq!(e.run(50_000_000), RunOutcome::Halted);
    assert_eq!(e.guest_reg(ArmReg::R0), want);
}

/// The `scripts/tier1.sh` smoke matrix drives this test with every
/// `LDBT_FAULT=<site>:<seed>` and `LDBT_WATCHDOG=1`: learning and the
/// engine pick the plan up from the environment (their defaults), and the
/// run must still complete with a pure-TCG-identical result.
#[test]
fn env_driven_fault_run_completes_identical_to_tcg() {
    let image = build_arm_image(SRC, &Options::o2()).unwrap();
    let want = tcg_want(&image);
    // Defaults: fault and watchdog from the environment.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let (rules, _) = learn(&LearnConfig::default());
    std::panic::set_hook(prev);
    // Whether an install-time fault plan has a victim in this learned
    // set (e.g. operand-swap needs a two-register rule): replay the
    // corruption on a throwaway clone before the set moves into the
    // engine, so the per-site outcome asserts below don't demand a
    // repair of a fault that never installed.
    let plan = ldbt_learn::fault::env_plan();
    let installs = match plan {
        Some(p @ FaultPlan { site: FaultSite::ImmSkew | FaultSite::OperandSwap, .. }) => {
            ldbt_learn::corrupt_ruleset(&mut rules.clone(), p).is_some()
        }
        _ => false,
    };
    let mut e = Engine::new(&image, Translator::Rules(Arc::new(rules)));
    assert_eq!(e.run(50_000_000), RunOutcome::Halted, "no fault plan may abort the run");
    assert_eq!(
        e.guest_reg(ArmReg::R0),
        want,
        "guest-visible output must stay bit-identical to pure TCG under LDBT_FAULT={:?} LDBT_WATCHDOG={:?}",
        std::env::var("LDBT_FAULT").ok(),
        std::env::var("LDBT_WATCHDOG").ok(),
    );
    // The smoke matrix also pins the repair outcome per site: with the
    // watchdog sampling, an install-time corruption must end repaired
    // when repair is on, and the lowering-time `rule-corrupt` clobber
    // must stay permanently tombstoned (the control: its rule is healthy,
    // so the counterexample gate rejects every "repair").
    if e.stats.watchdog_checks() > 0 && ldbt_dbt::env::repair_from_env() {
        match plan.map(|p| p.site) {
            Some(FaultSite::ImmSkew | FaultSite::OperandSwap) if installs => {
                assert!(e.stats.wd_repaired() >= 1, "install-time corruption must be repaired");
                assert_eq!(e.stats.quarantined_rules(), 0, "repair leaves no tombstone");
            }
            Some(FaultSite::RuleCorrupt) => {
                assert_eq!(e.stats.wd_repaired(), 0, "rule-corrupt is unrepairable by design");
                assert!(e.stats.quarantined_rules() >= 1, "the clobbered rule stays tombstoned");
            }
            _ => {}
        }
    }
}
