//! Fault-injection harness (`LDBT_FAULT`, `LDBT_WATCHDOG`).
//!
//! Each injection site must degrade gracefully, never abort: a corrupted
//! rule is caught by the watchdog and quarantined, an exhausted solver
//! budget surfaces as recorded `Other` verification failures, a panicking
//! verify worker loses only its item — and in every case the guest's
//! final state is bit-identical to a pure-TCG run (rules are verified or
//! dropped, never trusted blindly).

use ldbt_arm::ArmReg;
use ldbt_compiler::{link::build_arm_image, Options};
use ldbt_dbt::engine::{RunOutcome, Translator};
use ldbt_dbt::Engine;
use ldbt_learn::cache::VerifyCache;
use ldbt_learn::pipeline::{learn_from_source_cached, LearnConfig};
use ldbt_learn::{FaultPlan, FaultSite, RuleSet};
use std::rc::Rc;

/// A small program with rule-friendly inner-loop arithmetic.
const SRC: &str = "
int a[16];
int main() {
  int s = 0;
  for (int i = 0; i < 16; i += 1) { a[i] = i * 5 + 1; }
  for (int i = 0; i < 16; i += 1) {
    s = s + a[i];
    s = s - 1;
    s = s ^ 3;
  }
  return s & 0xffff;
}";

fn clean_config() -> LearnConfig {
    LearnConfig { fault: None, ..LearnConfig::default() }
}

fn learn(config: &LearnConfig) -> (RuleSet, ldbt_learn::LearnStats) {
    let report =
        learn_from_source_cached("fi", SRC, &Options::o2(), config, &mut VerifyCache::new())
            .expect("learning completes");
    (report.rules, report.stats)
}

/// The pure-TCG reference result for `SRC`.
fn tcg_want(image: &ldbt_compiler::ArmImage) -> u32 {
    let mut base = Engine::new(image, Translator::Tcg).with_watchdog(None).with_fault(None);
    assert_eq!(base.run(50_000_000), RunOutcome::Halted);
    base.guest_reg(ArmReg::R0)
}

#[test]
fn clean_watchdog_run_quarantines_nothing() {
    let image = build_arm_image(SRC, &Options::o2()).unwrap();
    let want = tcg_want(&image);
    let (rules, _) = learn(&clean_config());
    let mut e = Engine::new(&image, Translator::Rules(Rc::new(rules)))
        .with_watchdog(Some(1))
        .with_fault(None);
    assert_eq!(e.run(50_000_000), RunOutcome::Halted);
    assert_eq!(e.guest_reg(ArmReg::R0), want, "watchdog must not perturb a clean run");
    assert!(e.stats.guest_dyn_covered() > 0, "rules must actually apply");
    assert!(e.stats.watchdog_checks() > 0, "rule-covered dispatches were sampled");
    assert_eq!(e.stats.quarantined_rules(), 0, "verified rules never mismatch");
}

#[test]
fn rule_corrupt_is_quarantined_and_output_matches_tcg() {
    let image = build_arm_image(SRC, &Options::o2()).unwrap();
    let want = tcg_want(&image);
    let (rules, _) = learn(&clean_config());
    let fault = FaultPlan { site: FaultSite::RuleCorrupt, seed: 0 };
    let mut e = Engine::new(&image, Translator::Rules(Rc::new(rules)))
        .with_watchdog(Some(1))
        .with_fault(Some(fault));
    assert_eq!(e.run(50_000_000), RunOutcome::Halted, "corruption must not abort the run");
    assert_eq!(e.guest_reg(ArmReg::R0), want, "quarantine must restore TCG-identical output");
    assert!(e.stats.watchdog_checks() > 0);
    assert!(
        e.stats.quarantined_rules() >= 1,
        "the corrupted rule application must be caught and tombstoned"
    );
}

#[test]
fn solver_exhaust_degrades_yield_without_abort() {
    let (clean_rules, clean_stats) = learn(&clean_config());
    let fault = FaultPlan { site: FaultSite::SolverExhaust, seed: 0 };
    let config = LearnConfig { fault: Some(fault), ..LearnConfig::default() };
    let (rules, stats) = learn(&config);
    assert!(rules.len() <= clean_rules.len(), "an exhausted solver can only lose rules");
    assert!(
        stats.ver_other >= clean_stats.ver_other,
        "budget exhaustion is recorded as Other failures"
    );
    // Whatever survived is still verified: the DBT result stays exact.
    let image = build_arm_image(SRC, &Options::o2()).unwrap();
    let want = tcg_want(&image);
    let mut e = Engine::new(&image, Translator::Rules(Rc::new(rules)))
        .with_watchdog(Some(1))
        .with_fault(None);
    assert_eq!(e.run(50_000_000), RunOutcome::Halted);
    assert_eq!(e.guest_reg(ArmReg::R0), want);
    assert_eq!(e.stats.quarantined_rules(), 0);
}

#[test]
fn worker_panic_loses_only_its_item() {
    let (clean_rules, _) = learn(&clean_config());
    let fault = FaultPlan { site: FaultSite::WorkerPanic, seed: 3 };
    // Suppress the injected panic's default stderr backtrace.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let config = LearnConfig { fault: Some(fault), isolate: true, ..LearnConfig::default() };
    let (rules, stats) = learn(&config);
    std::panic::set_hook(prev);
    assert!(stats.ver_other >= 1, "the panicked item is recorded as an Other failure");
    assert!(
        clean_rules.len().saturating_sub(rules.len()) <= 1,
        "at most the panicked item's rule is lost ({} vs {})",
        rules.len(),
        clean_rules.len()
    );
    // The surviving set still runs exactly.
    let image = build_arm_image(SRC, &Options::o2()).unwrap();
    let want = tcg_want(&image);
    let mut e = Engine::new(&image, Translator::Rules(Rc::new(rules)))
        .with_watchdog(Some(1))
        .with_fault(None);
    assert_eq!(e.run(50_000_000), RunOutcome::Halted);
    assert_eq!(e.guest_reg(ArmReg::R0), want);
}

/// The `scripts/tier1.sh` smoke matrix drives this test with every
/// `LDBT_FAULT=<site>:<seed>` and `LDBT_WATCHDOG=1`: learning and the
/// engine pick the plan up from the environment (their defaults), and the
/// run must still complete with a pure-TCG-identical result.
#[test]
fn env_driven_fault_run_completes_identical_to_tcg() {
    let image = build_arm_image(SRC, &Options::o2()).unwrap();
    let want = tcg_want(&image);
    // Defaults: fault and watchdog from the environment.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let (rules, _) = learn(&LearnConfig::default());
    std::panic::set_hook(prev);
    let mut e = Engine::new(&image, Translator::Rules(Rc::new(rules)));
    assert_eq!(e.run(50_000_000), RunOutcome::Halted, "no fault plan may abort the run");
    assert_eq!(
        e.guest_reg(ArmReg::R0),
        want,
        "guest-visible output must stay bit-identical to pure TCG under LDBT_FAULT={:?} LDBT_WATCHDOG={:?}",
        std::env::var("LDBT_FAULT").ok(),
        std::env::var("LDBT_WATCHDOG").ok(),
    );
}
