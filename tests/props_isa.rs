//! Property-based tests for both instruction sets: encode/decode
//! round-trips and interpreter invariants.

use ldbt_arm::{AddrMode, ArmInstr, ArmReg, Cond, DpOp, Operand2, Shift};
use ldbt_isa::{Memory, Width};
use ldbt_x86::{AluOp, Cc, Gpr, Operand, ShiftOp, UnOp, X86Instr, X86Mem};
use proptest::prelude::*;
use std::collections::HashMap;

fn arm_reg() -> impl Strategy<Value = ArmReg> {
    (0usize..16).prop_map(ArmReg::from_index)
}

fn arm_cond() -> impl Strategy<Value = Cond> {
    (0usize..15).prop_map(|i| Cond::ALL[i])
}

fn shift() -> impl Strategy<Value = Shift> {
    (0u8..4, 1u8..32).prop_map(|(t, a)| match t {
        0 => Shift::Lsl(a),
        1 => Shift::Lsr(a),
        2 => Shift::Asr(a),
        _ => Shift::Ror(a),
    })
}

fn operand2() -> impl Strategy<Value = Operand2> {
    prop_oneof![
        (0u32..4096).prop_map(Operand2::Imm),
        arm_reg().prop_map(Operand2::Reg),
        (arm_reg(), shift()).prop_map(|(r, s)| Operand2::RegShift(r, s)),
    ]
}

fn arm_instr() -> impl Strategy<Value = ArmInstr> {
    prop_oneof![
        (0usize..15, arm_reg(), arm_reg(), operand2(), any::<bool>(), arm_cond()).prop_map(
            |(op, rd, rn, op2, s, cond)| {
                let op = DpOp::ALL[op];
                ArmInstr::Dp { op, rd, rn, op2, set_flags: s || op.is_compare(), cond }
            }
        ),
        (arm_reg(), arm_reg(), arm_reg(), any::<bool>(), arm_cond())
            .prop_map(|(rd, rn, rm, s, cond)| ArmInstr::Mul { rd, rn, rm, set_flags: s, cond }),
        (arm_reg(), arm_reg(), -2048i32..2048, 0usize..3, any::<bool>(), arm_cond()).prop_map(
            |(rt, rn, off, w, sg, cond)| {
                let width = [Width::W8, Width::W16, Width::W32][w];
                ArmInstr::Ldr { rt, addr: AddrMode::Imm(rn, off), width, signed: sg, cond }
            }
        ),
        (arm_reg(), arm_reg(), arm_reg(), 1u8..32, arm_cond()).prop_map(|(rt, rn, rm, s, cond)| {
            ArmInstr::Str { rt, addr: AddrMode::RegShift(rn, rm, s), width: Width::W32, cond }
        }),
        (-(1i32 << 23)..(1 << 23), arm_cond())
            .prop_map(|(offset, cond)| ArmInstr::B { offset, cond }),
        (arm_reg(), 0u32..0x100_0000).prop_map(|(rm, imm)| {
            if imm & 1 == 0 {
                ArmInstr::Bx { rm, cond: Cond::Al }
            } else {
                ArmInstr::Svc { imm, cond: Cond::Al }
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn arm_encode_decode_roundtrip(instr in arm_instr()) {
        let word = ldbt_arm::encode::encode(&instr).expect("valid by construction");
        let back = ldbt_arm::encode::decode(word).expect("decodes");
        prop_assert_eq!(back, instr);
        // Re-encoding is a fixpoint.
        prop_assert_eq!(ldbt_arm::encode::encode(&back).unwrap(), word);
    }

    #[test]
    fn arm_display_is_nonempty_and_stable(instr in arm_instr()) {
        let s = instr.to_string();
        prop_assert!(!s.is_empty());
        prop_assert_eq!(instr.to_string(), s);
    }

    #[test]
    fn arm_flags_written_within_mask(instr in arm_instr()) {
        prop_assert_eq!(instr.flags_written() & !0b1111, 0);
        prop_assert_eq!(instr.flags_read() & !0b1111, 0);
        if !instr.sets_flags() {
            prop_assert_eq!(instr.flags_written(), 0);
        }
    }
}

/// One guest-memory operation for the fast-path equivalence property.
#[derive(Debug, Clone)]
enum MemOp {
    Write(u32, u32, Width),
    Read(u32, Width),
    WriteBytes(u32, Vec<u8>),
}

/// Addresses concentrated on a few pages, with extra weight right at
/// page boundaries so W16/W32 page-cross and unaligned accesses are
/// common rather than rare.
fn mem_addr() -> impl Strategy<Value = u32> {
    let off = prop_oneof![0u32..4096, 4090u32..4096, Just(0u32), Just(1u32)];
    (0u32..4, off).prop_map(|(page, off)| page * 4096 + off)
}

fn mem_op() -> impl Strategy<Value = MemOp> {
    let width = prop_oneof![Just(Width::W8), Just(Width::W16), Just(Width::W32)];
    prop_oneof![
        (mem_addr(), any::<u32>(), width.clone()).prop_map(|(a, v, w)| MemOp::Write(a, v, w)),
        (mem_addr(), width).prop_map(|(a, w)| MemOp::Read(a, w)),
        (mem_addr(), proptest::collection::vec(any::<u8>(), 0..24))
            .prop_map(|(a, bytes)| MemOp::WriteBytes(a, bytes)),
    ]
}

/// Byte-at-a-time little-endian reference model for guest memory.
#[derive(Default)]
struct ShadowMem(HashMap<u32, u8>);

impl ShadowMem {
    fn write(&mut self, addr: u32, val: u32, width: Width) {
        for i in 0..width.bytes() {
            self.0.insert(addr.wrapping_add(i), (val >> (8 * i)) as u8);
        }
    }
    fn read(&self, addr: u32, width: Width) -> u32 {
        let mut v = 0u32;
        for i in 0..width.bytes() {
            v |= (*self.0.get(&addr.wrapping_add(i)).unwrap_or(&0) as u32) << (8 * i);
        }
        v
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The word-wide/page-cached memory fast path is observationally
    /// identical to a plain byte-at-a-time little-endian model, across
    /// unaligned and page-crossing accesses interleaved with bulk
    /// `write_bytes` (which drops the last-page caches).
    #[test]
    fn memory_fast_path_equals_byte_loop(ops in proptest::collection::vec(mem_op(), 1..80)) {
        let mut mem = Memory::new();
        let mut shadow = ShadowMem::default();
        for op in &ops {
            match op {
                MemOp::Write(a, v, w) => {
                    mem.write(*a, *v, *w);
                    shadow.write(*a, *v, *w);
                }
                MemOp::Read(a, w) => {
                    prop_assert_eq!(mem.read(*a, *w), shadow.read(*a, *w));
                }
                MemOp::WriteBytes(a, bytes) => {
                    mem.write_bytes(*a, bytes);
                    for (i, b) in bytes.iter().enumerate() {
                        shadow.0.insert(a.wrapping_add(i as u32), *b);
                    }
                }
            }
        }
        // Final sweep: every byte either side ever touched, plus both
        // sides of each page boundary, reads back identically.
        for page in 0u32..4 {
            for off in [0u32, 1, 2, 3, 4093, 4094, 4095] {
                let a = page * 4096 + off;
                for w in [Width::W8, Width::W16, Width::W32] {
                    prop_assert_eq!(mem.read(a, w), shadow.read(a, w));
                }
            }
        }
    }
}

fn gpr() -> impl Strategy<Value = Gpr> {
    (0usize..8).prop_map(Gpr::from_index)
}

fn x86_mem() -> impl Strategy<Value = X86Mem> {
    (
        proptest::option::of(gpr()),
        proptest::option::of((
            gpr().prop_filter("esp is not an index", |g| *g != Gpr::Esp),
            0u8..4,
        )),
        -5000i32..5000,
    )
        .prop_map(|(base, idx, disp)| X86Mem {
            base,
            index: idx.map(|(r, s)| (r, 1u8 << s)),
            disp,
        })
}

fn rm_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![gpr().prop_map(Operand::Reg), x86_mem().prop_map(Operand::Mem)]
}

fn x86_instr() -> impl Strategy<Value = X86Instr> {
    prop_oneof![
        (gpr(), any::<i32>()).prop_map(|(r, v)| X86Instr::mov_imm(r, v)),
        (rm_operand(), gpr()).prop_map(|(dst, s)| X86Instr::Mov { dst, src: Operand::Reg(s) }),
        (gpr(), x86_mem())
            .prop_map(|(d, m)| X86Instr::Mov { dst: Operand::Reg(d), src: Operand::Mem(m) }),
        (0usize..9, rm_operand(), gpr()).prop_map(|(op, dst, s)| X86Instr::Alu {
            op: AluOp::ALL[op],
            dst,
            src: Operand::Reg(s)
        }),
        (0usize..9, rm_operand(), any::<i32>()).prop_map(|(op, dst, v)| X86Instr::Alu {
            op: AluOp::ALL[op],
            dst,
            src: Operand::Imm(v)
        }),
        (gpr(), x86_mem()).prop_map(|(d, m)| X86Instr::Lea { dst: d, addr: m }),
        (gpr(), rm_operand()).prop_map(|(d, s)| X86Instr::Imul { dst: d, src: s }),
        (0usize..3, rm_operand(), 1u8..32).prop_map(|(op, dst, c)| X86Instr::Shift {
            op: [ShiftOp::Shl, ShiftOp::Shr, ShiftOp::Sar][op],
            dst,
            count: c
        }),
        (0usize..4, rm_operand()).prop_map(|(op, dst)| X86Instr::Un {
            op: [UnOp::Neg, UnOp::Not, UnOp::Inc, UnOp::Dec][op],
            dst
        }),
        (any::<bool>(), any::<bool>(), gpr(), x86_mem()).prop_map(|(sg, w16, d, m)| {
            X86Instr::Movx {
                sign: sg,
                width: if w16 { Width::W16 } else { Width::W8 },
                dst: d,
                src: Operand::Mem(m),
            }
        }),
        (0usize..14, 0usize..4)
            .prop_map(|(cc, r)| X86Instr::Setcc { cc: Cc::ALL[cc], dst: Gpr::from_index(r) }),
        Just(X86Instr::Ret),
        Just(X86Instr::Pushfd),
        Just(X86Instr::Popfd),
        Just(X86Instr::Halt),
        gpr().prop_map(|r| X86Instr::Push { src: Operand::Reg(r) }),
        gpr().prop_map(|r| X86Instr::Pop { dst: Operand::Reg(r) }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn x86_encode_decode_roundtrip(instr in x86_instr()) {
        let bytes = ldbt_x86::encode::encode(&instr).expect("valid by construction");
        let (back, len) = ldbt_x86::encode::decode(&bytes).expect("decodes");
        prop_assert_eq!(back, instr);
        prop_assert_eq!(len, bytes.len());
    }

    #[test]
    fn x86_sequences_disassemble(instrs in proptest::collection::vec(x86_instr(), 1..12)) {
        // Straight-line sequences (no branch targets to fix up).
        let bytes = ldbt_x86::encode::assemble(&instrs).expect("assembles");
        let back = ldbt_x86::encode::disassemble(&bytes).expect("disassembles");
        prop_assert_eq!(back, instrs);
    }

    #[test]
    fn x86_mem_operands_consistent(instr in x86_instr()) {
        // mem_operands() ⊇ mem_operand(), and RMW forms report
        // load-then-store at the same address.
        let all = instr.mem_operands();
        if let Some(one) = instr.mem_operand() {
            prop_assert!(all.contains(&one));
        }
        if all.len() == 2 {
            prop_assert_eq!(all[0].0, all[1].0);
            prop_assert!(!all[0].2 && all[1].2);
        }
    }
}
