//! Property-based tests for both instruction sets: encode/decode
//! round-trips and interpreter invariants.

use ldbt_arm::{AddrMode, ArmInstr, ArmReg, Cond, DpOp, Operand2, Shift};
use ldbt_isa::{Memory, Width};
use ldbt_x86::{AluOp, Cc, Gpr, Operand, ShiftOp, UnOp, X86Instr, X86Mem};
use proptest::prelude::*;
use std::collections::HashMap;

fn arm_reg() -> impl Strategy<Value = ArmReg> {
    (0usize..16).prop_map(ArmReg::from_index)
}

fn arm_cond() -> impl Strategy<Value = Cond> {
    (0usize..15).prop_map(|i| Cond::ALL[i])
}

fn shift() -> impl Strategy<Value = Shift> {
    (0u8..4, 1u8..32).prop_map(|(t, a)| match t {
        0 => Shift::Lsl(a),
        1 => Shift::Lsr(a),
        2 => Shift::Asr(a),
        _ => Shift::Ror(a),
    })
}

fn operand2() -> impl Strategy<Value = Operand2> {
    prop_oneof![
        (0u32..4096).prop_map(Operand2::Imm),
        arm_reg().prop_map(Operand2::Reg),
        (arm_reg(), shift()).prop_map(|(r, s)| Operand2::RegShift(r, s)),
    ]
}

fn arm_instr() -> impl Strategy<Value = ArmInstr> {
    prop_oneof![
        (0usize..15, arm_reg(), arm_reg(), operand2(), any::<bool>(), arm_cond()).prop_map(
            |(op, rd, rn, op2, s, cond)| {
                let op = DpOp::ALL[op];
                ArmInstr::Dp { op, rd, rn, op2, set_flags: s || op.is_compare(), cond }
            }
        ),
        (arm_reg(), arm_reg(), arm_reg(), any::<bool>(), arm_cond())
            .prop_map(|(rd, rn, rm, s, cond)| ArmInstr::Mul { rd, rn, rm, set_flags: s, cond }),
        (arm_reg(), arm_reg(), -2048i32..2048, 0usize..3, any::<bool>(), arm_cond()).prop_map(
            |(rt, rn, off, w, sg, cond)| {
                let width = [Width::W8, Width::W16, Width::W32][w];
                ArmInstr::Ldr { rt, addr: AddrMode::Imm(rn, off), width, signed: sg, cond }
            }
        ),
        (arm_reg(), arm_reg(), arm_reg(), 1u8..32, arm_cond()).prop_map(|(rt, rn, rm, s, cond)| {
            ArmInstr::Str { rt, addr: AddrMode::RegShift(rn, rm, s), width: Width::W32, cond }
        }),
        (-(1i32 << 23)..(1 << 23), arm_cond())
            .prop_map(|(offset, cond)| ArmInstr::B { offset, cond }),
        (arm_reg(), 0u32..0x100_0000).prop_map(|(rm, imm)| {
            if imm & 1 == 0 {
                ArmInstr::Bx { rm, cond: Cond::Al }
            } else {
                ArmInstr::Svc { imm, cond: Cond::Al }
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn arm_encode_decode_roundtrip(instr in arm_instr()) {
        let word = ldbt_arm::encode::encode(&instr).expect("valid by construction");
        let back = ldbt_arm::encode::decode(word).expect("decodes");
        prop_assert_eq!(back, instr);
        // Re-encoding is a fixpoint.
        prop_assert_eq!(ldbt_arm::encode::encode(&back).unwrap(), word);
    }

    #[test]
    fn arm_display_is_nonempty_and_stable(instr in arm_instr()) {
        let s = instr.to_string();
        prop_assert!(!s.is_empty());
        prop_assert_eq!(instr.to_string(), s);
    }

    #[test]
    fn arm_flags_written_within_mask(instr in arm_instr()) {
        prop_assert_eq!(instr.flags_written() & !0b1111, 0);
        prop_assert_eq!(instr.flags_read() & !0b1111, 0);
        if !instr.sets_flags() {
            prop_assert_eq!(instr.flags_written(), 0);
        }
    }
}

/// One guest-memory operation for the fast-path equivalence property.
#[derive(Debug, Clone)]
enum MemOp {
    Write(u32, u32, Width),
    Read(u32, Width),
    WriteBytes(u32, Vec<u8>),
}

/// Addresses concentrated on a few pages, with extra weight right at
/// page boundaries so W16/W32 page-cross and unaligned accesses are
/// common rather than rare.
fn mem_addr() -> impl Strategy<Value = u32> {
    let off = prop_oneof![0u32..4096, 4090u32..4096, Just(0u32), Just(1u32)];
    (0u32..4, off).prop_map(|(page, off)| page * 4096 + off)
}

fn mem_op() -> impl Strategy<Value = MemOp> {
    let width = prop_oneof![Just(Width::W8), Just(Width::W16), Just(Width::W32)];
    prop_oneof![
        (mem_addr(), any::<u32>(), width.clone()).prop_map(|(a, v, w)| MemOp::Write(a, v, w)),
        (mem_addr(), width).prop_map(|(a, w)| MemOp::Read(a, w)),
        (mem_addr(), proptest::collection::vec(any::<u8>(), 0..24))
            .prop_map(|(a, bytes)| MemOp::WriteBytes(a, bytes)),
    ]
}

/// Byte-at-a-time little-endian reference model for guest memory.
#[derive(Default)]
struct ShadowMem(HashMap<u32, u8>);

impl ShadowMem {
    fn write(&mut self, addr: u32, val: u32, width: Width) {
        for i in 0..width.bytes() {
            self.0.insert(addr.wrapping_add(i), (val >> (8 * i)) as u8);
        }
    }
    fn read(&self, addr: u32, width: Width) -> u32 {
        let mut v = 0u32;
        for i in 0..width.bytes() {
            v |= (*self.0.get(&addr.wrapping_add(i)).unwrap_or(&0) as u32) << (8 * i);
        }
        v
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The word-wide/page-cached memory fast path is observationally
    /// identical to a plain byte-at-a-time little-endian model, across
    /// unaligned and page-crossing accesses interleaved with bulk
    /// `write_bytes` (which drops the last-page caches).
    #[test]
    fn memory_fast_path_equals_byte_loop(ops in proptest::collection::vec(mem_op(), 1..80)) {
        let mut mem = Memory::new();
        let mut shadow = ShadowMem::default();
        for op in &ops {
            match op {
                MemOp::Write(a, v, w) => {
                    mem.write(*a, *v, *w);
                    shadow.write(*a, *v, *w);
                }
                MemOp::Read(a, w) => {
                    prop_assert_eq!(mem.read(*a, *w), shadow.read(*a, *w));
                }
                MemOp::WriteBytes(a, bytes) => {
                    mem.write_bytes(*a, bytes);
                    for (i, b) in bytes.iter().enumerate() {
                        shadow.0.insert(a.wrapping_add(i as u32), *b);
                    }
                }
            }
        }
        // Final sweep: every byte either side ever touched, plus both
        // sides of each page boundary, reads back identically.
        for page in 0u32..4 {
            for off in [0u32, 1, 2, 3, 4093, 4094, 4095] {
                let a = page * 4096 + off;
                for w in [Width::W8, Width::W16, Width::W32] {
                    prop_assert_eq!(mem.read(a, w), shadow.read(a, w));
                }
            }
        }
    }
}

/// One guest memory access for the fusion-equivalence property, at a
/// static absolute address in the guest data region.
#[derive(Debug, Clone)]
enum FuseOp {
    /// Store an immediate (via `mov_imm` + `MovStore` for narrow widths,
    /// a direct memory-immediate `mov` for words).
    Store(u32, i32, Width),
    /// Two 16-bit constant stores at `addr` and `addr + 2` — the shape
    /// `pair_stores` fuses into one word store when `addr % 4 == 0`, and
    /// must refuse otherwise.
    Pair(u32, u16, u16),
    /// Load (zero- or sign-extended for narrow widths) folded into the
    /// `%esi` checksum.
    Load(u32, Width, bool),
}

/// Absolute guest data addresses: a few pages starting at 0x0050_0000,
/// weighted toward page boundaries and unaligned offsets so misaligned
/// and page-crossing accesses (which fusion must never pair) are common.
fn fuse_addr() -> impl Strategy<Value = u32> {
    let off = prop_oneof![0u32..16, 4088u32..4096, Just(1u32), Just(2u32), Just(3u32)];
    (0u32..3, off).prop_map(|(page, off)| 0x0050_0000 + page * 4096 + off)
}

fn fuse_op() -> impl Strategy<Value = FuseOp> {
    let width = prop_oneof![Just(Width::W8), Just(Width::W16), Just(Width::W32)];
    prop_oneof![
        (fuse_addr(), any::<i32>(), width.clone()).prop_map(|(a, v, w)| FuseOp::Store(a, v, w)),
        (fuse_addr(), any::<u16>(), any::<u16>()).prop_map(|(a, lo, hi)| FuseOp::Pair(a, lo, hi)),
        (fuse_addr(), width, any::<bool>()).prop_map(|(a, w, s)| FuseOp::Load(a, w, s)),
    ]
}

/// Lower one [`FuseOp`] to host code. Loads fold into the `%esi`
/// checksum with an op alternating by position so reorderings change the
/// result.
fn emit_fuse_op(idx: usize, op: &FuseOp, code: &mut Vec<X86Instr>) {
    let fold = if idx.is_multiple_of(2) { AluOp::Add } else { AluOp::Xor };
    let abs = |a: u32| X86Mem::absolute(a as i32);
    match *op {
        FuseOp::Store(a, v, Width::W32) => {
            code.push(X86Instr::Mov { dst: Operand::Mem(abs(a)), src: Operand::Imm(v) });
        }
        FuseOp::Store(a, v, w) => {
            code.push(X86Instr::mov_imm(Gpr::Eax, v));
            code.push(X86Instr::MovStore { width: w, src: Gpr::Eax, dst: abs(a) });
        }
        FuseOp::Pair(a, lo, hi) => {
            code.push(X86Instr::mov_imm(Gpr::Eax, lo as i32));
            code.push(X86Instr::mov_imm(Gpr::Edx, hi as i32));
            code.push(X86Instr::MovStore { width: Width::W16, src: Gpr::Eax, dst: abs(a) });
            code.push(X86Instr::MovStore {
                width: Width::W16,
                src: Gpr::Edx,
                dst: abs(a.wrapping_add(2)),
            });
        }
        FuseOp::Load(a, Width::W32, _) => {
            code.push(X86Instr::Mov { dst: Operand::Reg(Gpr::Eax), src: Operand::Mem(abs(a)) });
            code.push(X86Instr::Alu {
                op: fold,
                dst: Operand::Reg(Gpr::Esi),
                src: Operand::Reg(Gpr::Eax),
            });
        }
        FuseOp::Load(a, w, sign) => {
            code.push(X86Instr::Movx { sign, width: w, dst: Gpr::Eax, src: Operand::Mem(abs(a)) });
            code.push(X86Instr::Alu {
                op: fold,
                dst: Operand::Reg(Gpr::Esi),
                src: Operand::Reg(Gpr::Eax),
            });
        }
    }
}

/// Apply one [`FuseOp`] to the byte-loop reference model, returning the
/// updated checksum.
fn shadow_fuse_op(idx: usize, op: &FuseOp, shadow: &mut ShadowMem, acc: u32) -> u32 {
    match *op {
        FuseOp::Store(a, v, w) => {
            shadow.write(a, v as u32, w);
            acc
        }
        FuseOp::Pair(a, lo, hi) => {
            shadow.write(a, lo as u32, Width::W16);
            shadow.write(a.wrapping_add(2), hi as u32, Width::W16);
            acc
        }
        FuseOp::Load(a, w, sign) => {
            let raw = shadow.read(a, w);
            let v = match (w, sign) {
                (Width::W8, true) => raw as u8 as i8 as i32 as u32,
                (Width::W16, true) => raw as u16 as i16 as i32 as u32,
                _ => raw,
            };
            if idx.is_multiple_of(2) {
                acc.wrapping_add(v)
            } else {
                acc ^ v
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Guest memory access fusion (store-to-load forwarding, redundant
    /// load elimination, dead-store sinking, narrow-store pairing —
    /// including the cross-seam fact carry) is observationally identical
    /// to the unfused access sequence as judged by a byte-at-a-time
    /// little-endian reference model, across unaligned and page-crossing
    /// accesses. Pairing never manufactures an unaligned word store.
    #[test]
    fn fused_region_matches_byte_loop_memory_model(
        ops in proptest::collection::vec(fuse_op(), 1..40),
        split_frac in 0u32..100,
    ) {
        use ldbt_dbt::sb::{fuse_region, SbPart};
        use ldbt_isa::{CostModel, ExecStats};
        use ldbt_x86::interp::{run_seq, SeqExit};
        use ldbt_x86::X86State;
        use std::rc::Rc;

        // Split the ops across two parts joined by a stripped seam so
        // the cross-seam fact carry is exercised.
        let split = (ops.len() * split_frac as usize) / 100;
        let (mut code_a, mut code_b) = (Vec::new(), Vec::new());
        for (idx, op) in ops.iter().enumerate() {
            emit_fuse_op(idx, op, if idx < split { &mut code_a } else { &mut code_b });
        }
        code_b.push(X86Instr::Ret);
        // Word stores that were *already* unaligned in the input: pairing
        // may never add to this set.
        let unaligned_words = |code: &[X86Instr]| -> Vec<i32> {
            code.iter()
                .filter_map(|ins| match *ins {
                    X86Instr::Mov { dst: Operand::Mem(m), src: Operand::Imm(_) }
                        if m.base.is_none() && m.index.is_none() && m.disp % 4 != 0 =>
                    {
                        Some(m.disp)
                    }
                    _ => None,
                })
                .collect()
        };
        let before_unaligned = {
            let mut v = unaligned_words(&code_a);
            v.extend(unaligned_words(&code_b));
            v
        };

        let mut parts = vec![
            SbPart { id: 3, code: Rc::new(code_a), fallthrough_seam: true },
            SbPart { id: 4, code: Rc::new(code_b), fallthrough_seam: false },
        ];
        fuse_region(&mut parts);
        for p in &parts {
            for d in unaligned_words(&p.code) {
                prop_assert!(
                    before_unaligned.contains(&d),
                    "pairing created an unaligned word store at {d:#x}"
                );
            }
        }

        // Execute the fused region: part 0 falls through its stripped
        // seam into part 1 (both are straight-line), so concatenation is
        // exactly the region's execution order.
        let mut code: Vec<X86Instr> = (*parts[0].code).clone();
        code.extend(parts[1].code.iter().copied());
        let mut st = X86State::new();
        st.set_reg(Gpr::Esp, ldbt_dbt::env::HOST_STACK_TOP);
        let mut stats = ExecStats::new();
        let exit = run_seq(&mut st, &code, 1_000_000, &CostModel::default(), &mut stats);
        prop_assert_eq!(exit, SeqExit::Returned);

        // Reference: the same ops against the byte-loop model.
        let mut shadow = ShadowMem::default();
        let mut acc = 0u32;
        for (idx, op) in ops.iter().enumerate() {
            acc = shadow_fuse_op(idx, op, &mut shadow, acc);
        }
        prop_assert_eq!(st.reg(Gpr::Esi), acc, "checksum over loaded values diverged");
        for op in &ops {
            let a = match *op {
                FuseOp::Store(a, ..) | FuseOp::Pair(a, ..) | FuseOp::Load(a, ..) => a,
            };
            for d in -4i64..8 {
                let b = a.wrapping_add(d as u32);
                prop_assert_eq!(
                    st.mem.read(b, Width::W8),
                    shadow.read(b, Width::W8),
                    "byte {b:#x} diverged after fusion"
                );
            }
        }
    }
}

fn gpr() -> impl Strategy<Value = Gpr> {
    (0usize..8).prop_map(Gpr::from_index)
}

fn x86_mem() -> impl Strategy<Value = X86Mem> {
    (
        proptest::option::of(gpr()),
        proptest::option::of((
            gpr().prop_filter("esp is not an index", |g| *g != Gpr::Esp),
            0u8..4,
        )),
        -5000i32..5000,
    )
        .prop_map(|(base, idx, disp)| X86Mem {
            base,
            index: idx.map(|(r, s)| (r, 1u8 << s)),
            disp,
        })
}

fn rm_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![gpr().prop_map(Operand::Reg), x86_mem().prop_map(Operand::Mem)]
}

fn x86_instr() -> impl Strategy<Value = X86Instr> {
    prop_oneof![
        (gpr(), any::<i32>()).prop_map(|(r, v)| X86Instr::mov_imm(r, v)),
        (rm_operand(), gpr()).prop_map(|(dst, s)| X86Instr::Mov { dst, src: Operand::Reg(s) }),
        (gpr(), x86_mem())
            .prop_map(|(d, m)| X86Instr::Mov { dst: Operand::Reg(d), src: Operand::Mem(m) }),
        (0usize..9, rm_operand(), gpr()).prop_map(|(op, dst, s)| X86Instr::Alu {
            op: AluOp::ALL[op],
            dst,
            src: Operand::Reg(s)
        }),
        (0usize..9, rm_operand(), any::<i32>()).prop_map(|(op, dst, v)| X86Instr::Alu {
            op: AluOp::ALL[op],
            dst,
            src: Operand::Imm(v)
        }),
        (gpr(), x86_mem()).prop_map(|(d, m)| X86Instr::Lea { dst: d, addr: m }),
        (gpr(), rm_operand()).prop_map(|(d, s)| X86Instr::Imul { dst: d, src: s }),
        (0usize..3, rm_operand(), 1u8..32).prop_map(|(op, dst, c)| X86Instr::Shift {
            op: [ShiftOp::Shl, ShiftOp::Shr, ShiftOp::Sar][op],
            dst,
            count: c
        }),
        (0usize..4, rm_operand()).prop_map(|(op, dst)| X86Instr::Un {
            op: [UnOp::Neg, UnOp::Not, UnOp::Inc, UnOp::Dec][op],
            dst
        }),
        (any::<bool>(), any::<bool>(), gpr(), x86_mem()).prop_map(|(sg, w16, d, m)| {
            X86Instr::Movx {
                sign: sg,
                width: if w16 { Width::W16 } else { Width::W8 },
                dst: d,
                src: Operand::Mem(m),
            }
        }),
        (0usize..14, 0usize..4)
            .prop_map(|(cc, r)| X86Instr::Setcc { cc: Cc::ALL[cc], dst: Gpr::from_index(r) }),
        Just(X86Instr::Ret),
        Just(X86Instr::Pushfd),
        Just(X86Instr::Popfd),
        Just(X86Instr::Halt),
        gpr().prop_map(|r| X86Instr::Push { src: Operand::Reg(r) }),
        gpr().prop_map(|r| X86Instr::Pop { dst: Operand::Reg(r) }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn x86_encode_decode_roundtrip(instr in x86_instr()) {
        let bytes = ldbt_x86::encode::encode(&instr).expect("valid by construction");
        let (back, len) = ldbt_x86::encode::decode(&bytes).expect("decodes");
        prop_assert_eq!(back, instr);
        prop_assert_eq!(len, bytes.len());
    }

    #[test]
    fn x86_sequences_disassemble(instrs in proptest::collection::vec(x86_instr(), 1..12)) {
        // Straight-line sequences (no branch targets to fix up).
        let bytes = ldbt_x86::encode::assemble(&instrs).expect("assembles");
        let back = ldbt_x86::encode::disassemble(&bytes).expect("disassembles");
        prop_assert_eq!(back, instrs);
    }

    #[test]
    fn x86_mem_operands_consistent(instr in x86_instr()) {
        // mem_operands() ⊇ mem_operand(), and RMW forms report
        // load-then-store at the same address.
        let all = instr.mem_operands();
        if let Some(one) = instr.mem_operand() {
            prop_assert!(all.contains(&one));
        }
        if all.len() == 2 {
            prop_assert_eq!(all[0].0, all[1].0);
            prop_assert!(!all[0].2 && all[1].2);
        }
    }
}

// --- Translation-cache coherence: code-page store detection ----------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The SMC pipeline's exactness property: marking a translated
    /// block's byte range and then applying the engine's overlap filter
    /// to the store-hit log must flag exactly the stores whose span
    /// intersects the block — every width and alignment, including
    /// page-crossing stores and multi-byte `write_bytes` spans. The
    /// page bitmap is allowed to log near misses on the same page; the
    /// span filter must discard them.
    #[test]
    fn code_page_store_log_triggers_iff_span_overlaps_block(
        block_word in 0u32..0x2000,
        block_words in 1u32..64,
        stores in proptest::collection::vec(
            (-0x3000i64..0x3000, 0usize..4, 1usize..9),
            1..32
        ),
    ) {
        let bpc = 0x1_0000 + block_word * 4;
        let blen = block_words * 4;
        let mut mem = Memory::new();
        mem.mark_code(bpc, blen);
        let (bs, be) = (bpc as u64, bpc as u64 + blen as u64);
        for (off, kind, nbytes) in stores {
            let addr = (bpc as i64 + off) as u32;
            let (ws, wl) = match kind {
                0 => { mem.write(addr, 0xa5, Width::W8); (addr as u64, 1u64) }
                1 => { mem.write(addr, 0xa5a5, Width::W16); (addr as u64, 2) }
                2 => { mem.write(addr, 0xa5a5_a5a5, Width::W32); (addr as u64, 4) }
                _ => {
                    mem.write_bytes(addr, &vec![0xa5u8; nbytes]);
                    (addr as u64, nbytes as u64)
                }
            };
            let spans = mem.take_code_writes();
            let logged_hit = spans.iter().any(|&(s, l)| {
                let (s, e) = (s as u64, s as u64 + l as u64);
                s < be && bs < e
            });
            let expect = ws < be && bs < ws + wl;
            prop_assert_eq!(
                logged_hit, expect,
                "store {:#x}+{} vs block {:#x}+{}", addr, wl, bpc, blen
            );
        }
        // A memory with no marked pages logs nothing at all — the store
        // fast path stays free for non-code workloads.
        let mut clean = Memory::new();
        clean.write(bpc, 1, Width::W32);
        clean.write_bytes(bpc + 8, &[1, 2, 3]);
        prop_assert!(!clean.has_code_writes());
    }
}
