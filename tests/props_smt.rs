//! Property-based tests for the SMT substrate: the solver-backed
//! equivalence oracle must agree with concrete evaluation.

use ldbt_smt::term::{TermId, TermPool};
use ldbt_smt::{check_equiv_budget, EquivResult};
use proptest::prelude::*;
use std::collections::HashMap;

/// A small random term over two 8-bit variables (8-bit keeps SAT cheap).
#[derive(Debug, Clone)]
enum Ast {
    X,
    Y,
    Const(u8),
    Not(Box<Ast>),
    Neg(Box<Ast>),
    Bin(u8, Box<Ast>, Box<Ast>),
}

fn ast() -> impl Strategy<Value = Ast> {
    let leaf = prop_oneof![Just(Ast::X), Just(Ast::Y), any::<u8>().prop_map(Ast::Const),];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|a| Ast::Not(Box::new(a))),
            inner.clone().prop_map(|a| Ast::Neg(Box::new(a))),
            (0u8..9, inner.clone(), inner).prop_map(|(op, a, b)| Ast::Bin(
                op,
                Box::new(a),
                Box::new(b)
            )),
        ]
    })
}

fn build(pool: &mut TermPool, a: &Ast) -> TermId {
    match a {
        Ast::X => pool.var("x", 8),
        Ast::Y => pool.var("y", 8),
        Ast::Const(c) => pool.constant(*c as u64, 8),
        Ast::Not(a) => {
            let t = build(pool, a);
            pool.not_(t)
        }
        Ast::Neg(a) => {
            let t = build(pool, a);
            pool.neg(t)
        }
        Ast::Bin(op, a, b) => {
            let ta = build(pool, a);
            let tb = build(pool, b);
            match op {
                0 => pool.add(ta, tb),
                1 => pool.sub(ta, tb),
                2 => pool.mul(ta, tb),
                3 => pool.and_(ta, tb),
                4 => pool.or_(ta, tb),
                5 => pool.xor_(ta, tb),
                6 => {
                    let c = pool.constant(3, 8);
                    let sh = pool.shl(tb, c);
                    pool.add(ta, sh)
                }
                7 => {
                    let c = pool.constant(2, 8);
                    let sh = pool.lshr(ta, c);
                    pool.xor_(sh, tb)
                }
                _ => {
                    let lt = pool.ult(ta, tb);
                    pool.zext(lt, 8)
                }
            }
        }
    }
}

fn eval_ast(a: &Ast, x: u8, y: u8) -> u8 {
    match a {
        Ast::X => x,
        Ast::Y => y,
        Ast::Const(c) => *c,
        Ast::Not(a) => !eval_ast(a, x, y),
        Ast::Neg(a) => eval_ast(a, x, y).wrapping_neg(),
        Ast::Bin(op, a, b) => {
            let va = eval_ast(a, x, y);
            let vb = eval_ast(b, x, y);
            match op {
                0 => va.wrapping_add(vb),
                1 => va.wrapping_sub(vb),
                2 => va.wrapping_mul(vb),
                3 => va & vb,
                4 => va | vb,
                5 => va ^ vb,
                6 => va.wrapping_add(vb << 3),
                7 => (va >> 2) ^ vb,
                _ => (va < vb) as u8,
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Exhaustive ground truth (8-bit × 8-bit) against the oracle.
    #[test]
    fn equiv_oracle_matches_exhaustive_truth(a in ast(), b in ast()) {
        let truly_equal = (0..=255u8).all(|x| {
            (0..=255u8).step_by(17).all(|y| eval_ast(&a, x, y) == eval_ast(&b, x, y))
        }) && (0..=255u8).step_by(13).all(|x| {
            (0..=255u8).all(|y| eval_ast(&a, x, y) == eval_ast(&b, x, y))
        });
        let mut pool = TermPool::new();
        let ta = build(&mut pool, &a);
        let tb = build(&mut pool, &b);
        match check_equiv_budget(&mut pool, ta, tb, 500_000) {
            EquivResult::Proved => prop_assert!(truly_equal, "oracle proved a falsity"),
            EquivResult::Refuted(env) => {
                prop_assert!(
                    pool.eval(ta, &env) != pool.eval(tb, &env),
                    "refutation model must distinguish the terms"
                );
                // Replay the counterexample on the reference evaluator,
                // resolving the model by symbol name.
                let mut by_name = HashMap::new();
                for sym in pool.vars(ta).into_iter().chain(pool.vars(tb)) {
                    by_name.insert(pool.sym_name(sym).to_string(), sym);
                }
                let get = |n: &str| {
                    by_name.get(n).and_then(|s| env.get(s)).copied().unwrap_or(0) as u8
                };
                let (x, y) = (get("x"), get("y"));
                prop_assert_ne!(eval_ast(&a, x, y), eval_ast(&b, x, y));
            }
            EquivResult::Unknown => prop_assert!(false, "budget exhausted on 8-bit terms"),
        }
    }

    /// The pool's simplifier preserves semantics.
    #[test]
    fn simplifier_preserves_eval(a in ast(), x in any::<u8>(), y in any::<u8>()) {
        let mut pool = TermPool::new();
        let t = build(&mut pool, &a);
        let mut env = HashMap::new();
        env.insert(0u32, x as u64); // x interned first
        env.insert(1u32, y as u64);
        // Symbol ids depend on interning order: x may not appear at all.
        let got = pool.eval(t, &env) as u8;
        // If x appears first its sym is 0 — but when the ast has no X the
        // first var is y. Evaluate the reference accordingly by matching
        // symbol names.
        let mut by_name = HashMap::new();
        for sym in pool.vars(t) {
            by_name.insert(pool.sym_name(sym).to_string(), sym);
        }
        let mut env2 = HashMap::new();
        if let Some(sx) = by_name.get("x") { env2.insert(*sx, x as u64); }
        if let Some(sy) = by_name.get("y") { env2.insert(*sy, y as u64); }
        let got2 = pool.eval(t, &env2) as u8;
        prop_assert_eq!(got2, eval_ast(&a, x, y));
        let _ = got;
    }

    /// Hash-consing: rebuilding the same expression in the same pool
    /// yields the identical term id, and the oracle proves it equal to
    /// itself instantly.
    #[test]
    fn hash_consing_is_idempotent(a in ast()) {
        let mut p = TermPool::new();
        let t1 = build(&mut p, &a);
        let t2 = build(&mut p, &a);
        prop_assert_eq!(t1, t2);
        prop_assert!(check_equiv_budget(&mut p, t1, t2, 0).is_proved());
    }
}
