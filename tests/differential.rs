//! Differential testing: randomly generated mini-C programs must produce
//! identical results under the ARM interpreter (golden model) and every
//! DBT engine, at every optimization level and compiler style.
//!
//! This is the repository's strongest correctness check — it exercises
//! the compiler, both ISAs, the TCG backend, the JIT optimizer, and the
//! rule pipeline (rules are learned from *separate* programs and applied
//! to the generated ones).

use ldbt_compiler::{link::build_arm_image, OptLevel, Options, Style};
use ldbt_dbt::engine::{RunOutcome, Translator};
use ldbt_dbt::Engine;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write;
use std::sync::Arc;

/// A tiny random-program generator (distinct from the workload suite so
/// the two cannot share bugs).
fn random_program(seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut src = String::new();
    let _ = writeln!(src, "int gl0; int gl1; int arr[32];");
    let nfuncs = rng.gen_range(1..4);
    for f in 0..nfuncs {
        let _ = writeln!(src, "int fun{f}(int a, int b) {{");
        let _ = writeln!(src, "  int s = a;");
        let stmts = rng.gen_range(2..8);
        for _ in 0..stmts {
            match rng.gen_range(0..8) {
                0 => {
                    let c = rng.gen_range(1..100);
                    let op = ["+", "-", "*", "&", "|", "^"][rng.gen_range(0..6)];
                    let _ = writeln!(src, "  s = s {op} {c};");
                }
                1 => {
                    let sh = rng.gen_range(1..8);
                    let op = ["<<", ">>"][rng.gen_range(0..2)];
                    let _ = writeln!(src, "  s = (s {op} {sh}) ^ b;");
                }
                2 => {
                    let _ = writeln!(
                        src,
                        "  if (s > b) {{ s -= b; }} else {{ s += {}; }}",
                        rng.gen_range(1..50)
                    );
                }
                3 => {
                    let n = rng.gen_range(1..12);
                    let _ = writeln!(
                        src,
                        "  for (int i = 0; i < {n}; i += 1) {{ s += arr[i & 31] ^ i; }}"
                    );
                }
                4 => {
                    let _ = writeln!(src, "  arr[s & 31] = s + b;");
                }
                5 => {
                    let _ = writeln!(src, "  gl{} += s;", rng.gen_range(0..2));
                }
                6 => {
                    let _ = writeln!(src, "  s += (s < b) + (a == {});", rng.gen_range(0..8));
                }
                _ => {
                    let _ = writeln!(src, "  s = s + a * {};", rng.gen_range(1..9));
                }
            }
        }
        let _ = writeln!(src, "  s = s & 0xffffff;");
        let _ = writeln!(src, "  return s;");
        let _ = writeln!(src, "}}");
    }
    let _ = writeln!(src, "int main() {{");
    let _ = writeln!(src, "  for (int i = 0; i < 32; i += 1) {{ arr[i] = i * 13; }}");
    let _ = writeln!(src, "  int acc = 0;");
    let reps = rng.gen_range(2..6);
    let _ = writeln!(src, "  for (int r = 0; r < {reps}; r += 1) {{");
    for f in 0..nfuncs {
        let _ = writeln!(src, "    acc += fun{f}(acc & 1023, r + {f});");
    }
    let _ = writeln!(src, "    acc = acc & 0xfffff;");
    let _ = writeln!(src, "  }}");
    let _ = writeln!(src, "  return (acc + gl0 + gl1) & 0xff;");
    let _ = writeln!(src, "}}");
    src
}

fn reference_result(image: &ldbt_compiler::ArmImage) -> u32 {
    let mut m = ldbt_arm::ArmMachine::new();
    image.load_into(&mut m.state.mem);
    m.state.regs[15] = image.entry;
    assert_eq!(m.run(100_000_000), ldbt_arm::ArmStop::Halt, "interpreter halts");
    m.state.reg(ldbt_arm::ArmReg::R0)
}

#[test]
fn random_programs_differential() {
    // Rules learned once from two fixed training programs.
    let training = [random_program(777_001), random_program(777_002)];
    let mut rules = ldbt_learn::RuleSet::new();
    for (i, src) in training.iter().enumerate() {
        let r = ldbt_learn::pipeline::learn_from_source(&format!("train{i}"), src, &Options::o2())
            .unwrap();
        rules.extend_from(&r.rules);
    }
    let rules = Arc::new(rules);

    for seed in 0..25u64 {
        let src = random_program(seed);
        for (level, style) in [
            (OptLevel::O0, Style::Llvm),
            (OptLevel::O2, Style::Llvm),
            (OptLevel::O2, Style::Gcc),
            (OptLevel::O3, Style::Llvm),
        ] {
            let options = Options { level, style };
            let image = build_arm_image(&src, &options)
                .unwrap_or_else(|e| panic!("seed {seed} {options:?}: {e}\n{src}"));
            let want = reference_result(&image);
            for translator in
                [Translator::Tcg, Translator::Jit, Translator::Rules(Arc::clone(&rules))]
            {
                let label = format!("seed {seed} {options:?} {translator:?}");
                let mut e = Engine::new(&image, translator);
                assert_eq!(e.run(3_000_000_000), RunOutcome::Halted, "{label}");
                assert_eq!(e.guest_reg(ldbt_arm::ArmReg::R0), want, "{label}\n{src}");
            }
        }
    }
}

#[test]
fn random_programs_are_deterministic_across_opt_levels() {
    for seed in 100..115u64 {
        let src = random_program(seed);
        let mut results = Vec::new();
        for level in OptLevel::ALL {
            let image = build_arm_image(&src, &Options::level(level)).unwrap();
            results.push(reference_result(&image));
        }
        assert!(results.windows(2).all(|w| w[0] == w[1]), "seed {seed}: {results:?}\n{src}");
    }
}
