//! Hand-written guest images that exercise the engine paths compiled
//! code rarely hits: cross-block condition-code consumption (the paper's
//! §5 machinery end-to-end), indirect branches, helper fallback, and
//! cache reuse across runs.

use ldbt_arm::{encode::assemble, AddrMode, ArmInstr, ArmReg, Cond, DpOp, Operand2};
use ldbt_compiler::ArmImage;
use ldbt_dbt::engine::{RunOutcome, Translator};
use ldbt_dbt::Engine;
use ldbt_learn::{Rule, RuleSet};
use ldbt_x86::{AluOp, Gpr, X86Instr};
use std::sync::Arc;

/// Wrap raw instructions into a runnable image at the standard base.
fn image_of(instrs: &[ArmInstr]) -> ArmImage {
    ArmImage {
        bytes: assemble(instrs).expect("encodable"),
        base: ldbt_compiler::link::CODE_BASE,
        entry: ldbt_compiler::link::CODE_BASE,
        func_addrs: vec![("raw".into(), ldbt_compiler::link::CODE_BASE)],
        meta: vec![(ldbt_isa::SourceLoc::NONE, None); instrs.len()],
        globals: vec![],
    }
}

fn run_all_engines(image: &ArmImage, rules: Arc<RuleSet>) -> Vec<(String, u32, u32)> {
    // Reference.
    let mut m = ldbt_arm::ArmMachine::new();
    image.load_into(&mut m.state.mem);
    m.state.regs[15] = image.entry;
    assert_eq!(m.run(1_000_000), ldbt_arm::ArmStop::Halt);
    let want_r0 = m.state.reg(ArmReg::R0);
    let want_r4 = m.state.reg(ArmReg::R4);
    let mut out = Vec::new();
    for t in [
        Translator::Tcg,
        Translator::Jit,
        Translator::Rules(Arc::clone(&rules)),
        Translator::RulesNoLazyFlags(rules.clone()),
    ] {
        let label = format!("{t:?}");
        let mut e = Engine::new(image, t);
        assert_eq!(e.run(100_000_000), RunOutcome::Halted, "{label}");
        assert_eq!(e.guest_reg(ArmReg::R0), want_r0, "{label} r0");
        assert_eq!(e.guest_reg(ArmReg::R4), want_r4, "{label} r4");
        out.push((label, e.guest_reg(ArmReg::R0), e.guest_reg(ArmReg::R4)));
    }
    out
}

/// A rule for `subs r, r, #imm` → `subl $imm, r` so the rule engine
/// covers the flag-producing block (C is emulated with sub polarity,
/// hence `unemulated_flags == 0`).
fn subs_rule() -> Rule {
    Rule {
        guest: vec![ArmInstr::dps(DpOp::Sub, ArmReg::R0, ArmReg::R0, Operand2::Imm(1))],
        host: vec![X86Instr::alu_ri(AluOp::Sub, Gpr::Ecx, 1)],
        host_reg_of: [(Gpr::Ecx, ArmReg::R0)].into_iter().collect(),
        imm_params: vec![ldbt_learn::rule::ImmParam {
            guest_site: (0, ldbt_learn::rule::ImmSlot::Data),
            extra_guest_sites: vec![],
            template_value: 1,
            host_sites: vec![(0, ldbt_learn::rule::ImmSlot::Data, ldbt_learn::rule::ImmRel::Id)],
        }],
        unemulated_flags: 0,
        has_branch: false,
    }
}

/// Flags set in one block, consumed by a *different* block: the rule
/// engine must save host flags lazily and the consumer must materialize
/// them through the flag-mode stub.
#[test]
fn cross_block_flag_consumption() {
    // b +0 forces a block boundary between the flag producer and the
    // conditional branch.
    let prog = vec![
        ArmInstr::mov(ArmReg::R0, Operand2::Imm(3)),
        ArmInstr::mov(ArmReg::R4, Operand2::Imm(0)),
        // loop:
        ArmInstr::dp(DpOp::Add, ArmReg::R4, ArmReg::R4, Operand2::Imm(5)),
        ArmInstr::dps(DpOp::Sub, ArmReg::R0, ArmReg::R0, Operand2::Imm(1)), // flags!
        ArmInstr::B { offset: 0, cond: Cond::Al },                          // block boundary
        ArmInstr::B { offset: -4, cond: Cond::Ne }, // consumes Z cross-block
        ArmInstr::Svc { imm: 0, cond: Cond::Al },
    ];
    let mut rules = RuleSet::new();
    rules.insert(subs_rule());
    let results = run_all_engines(&image_of(&prog), Arc::new(rules));
    for (label, r0, r4) in &results {
        assert_eq!(*r0, 0, "{label}");
        assert_eq!(*r4, 15, "{label}");
    }
}

/// Carry consumed across blocks (unsigned comparison polarity through
/// the saved-flag path).
#[test]
fn cross_block_carry_polarity() {
    let prog = vec![
        ArmInstr::mov(ArmReg::R0, Operand2::Imm(7)),
        ArmInstr::cmp(ArmReg::R0, Operand2::Imm(9)), // 7 < 9: C clear (borrow)
        ArmInstr::B { offset: 0, cond: Cond::Al },   // boundary
        // cs would skip; cc taken:
        ArmInstr::Dp {
            op: DpOp::Mov,
            rd: ArmReg::R4,
            rn: ArmReg::R0,
            op2: Operand2::Imm(111),
            set_flags: false,
            cond: Cond::Al,
        },
        ArmInstr::B { offset: 1, cond: Cond::Cc }, // taken (C clear)
        ArmInstr::mov(ArmReg::R4, Operand2::Imm(222)), // skipped
        ArmInstr::Svc { imm: 0, cond: Cond::Al },
    ];
    // Rule covering cmp so flags end up host-side.
    let mut rules = RuleSet::new();
    rules.insert(Rule {
        guest: vec![ArmInstr::cmp(ArmReg::R0, Operand2::Imm(9))],
        host: vec![X86Instr::alu_ri(AluOp::Cmp, Gpr::Ecx, 9)],
        host_reg_of: [(Gpr::Ecx, ArmReg::R0)].into_iter().collect(),
        imm_params: vec![],
        unemulated_flags: 0,
        has_branch: false,
    });
    let results = run_all_engines(&image_of(&prog), Arc::new(rules));
    for (label, _, r4) in &results {
        assert_eq!(*r4, 111, "{label}");
    }
}

/// Indirect branches through `bx` (computed dispatch).
#[test]
fn indirect_dispatch() {
    let base = ldbt_compiler::link::CODE_BASE;
    let prog = vec![
        // r1 = address of target (instr 5)
        ArmInstr::mov(ArmReg::R1, Operand2::Imm(5 * 4)),
        ArmInstr::dp(DpOp::Add, ArmReg::R1, ArmReg::R1, Operand2::Imm(base & 0xfff)),
        // base is 0x10000: materialize via shift
        ArmInstr::mov(ArmReg::R2, Operand2::Imm(1)),
        ArmInstr::dp(
            DpOp::Add,
            ArmReg::R1,
            ArmReg::R1,
            Operand2::RegShift(ArmReg::R2, ldbt_arm::Shift::Lsl(16)),
        ),
        ArmInstr::Bx { rm: ArmReg::R1, cond: Cond::Al },
        // target:
        ArmInstr::mov(ArmReg::R0, Operand2::Imm(99)),
        ArmInstr::Svc { imm: 0, cond: Cond::Al },
    ];
    let results = run_all_engines(&image_of(&prog), Arc::new(RuleSet::new()));
    for (label, r0, _) in &results {
        assert_eq!(*r0, 99, "{label}");
    }
}

/// Predicated memory operations go through the interpreter helper.
#[test]
fn predicated_memory_helper_fallback() {
    let prog = vec![
        ArmInstr::mov(ArmReg::R1, Operand2::Imm(0x800)),
        ArmInstr::mov(ArmReg::R0, Operand2::Imm(42)),
        ArmInstr::cmp(ArmReg::R0, Operand2::Imm(42)),
        // streq r0, [r1] — executes (Z set).
        ArmInstr::Str {
            rt: ArmReg::R0,
            addr: AddrMode::Imm(ArmReg::R1, 0),
            width: ldbt_isa::Width::W32,
            cond: Cond::Eq,
        },
        // strne r0, [r1, #4] — suppressed.
        ArmInstr::Str {
            rt: ArmReg::R0,
            addr: AddrMode::Imm(ArmReg::R1, 4),
            width: ldbt_isa::Width::W32,
            cond: Cond::Ne,
        },
        ArmInstr::ldr(ArmReg::R4, AddrMode::Imm(ArmReg::R1, 0)),
        ArmInstr::Svc { imm: 0, cond: Cond::Al },
    ];
    let image = image_of(&prog);
    let mut e = Engine::new(&image, Translator::Tcg);
    assert_eq!(e.run(1_000_000), RunOutcome::Halted);
    assert_eq!(e.guest_reg(ArmReg::R4), 42);
    assert!(e.stats.helper_steps() > 0, "helper must have been used");
    assert_eq!(e.state.mem.read(0x804, ldbt_isa::Width::W32), 0, "suppressed store");
}

/// The code cache is reused across a reset: the second run translates
/// nothing new.
#[test]
fn cache_reuse_across_reset() {
    let prog = vec![
        ArmInstr::mov(ArmReg::R0, Operand2::Imm(7)),
        ArmInstr::dps(DpOp::Sub, ArmReg::R0, ArmReg::R0, Operand2::Imm(1)),
        ArmInstr::B { offset: -2, cond: Cond::Ne },
        ArmInstr::Svc { imm: 0, cond: Cond::Al },
    ];
    let image = image_of(&prog);
    let mut e = Engine::new(&image, Translator::Tcg);
    assert_eq!(e.run(1_000_000), RunOutcome::Halted);
    let blocks_after_first = e.stats.blocks();
    let trans_after_first = e.stats.exec.translation_cycles;
    e.reset();
    assert_eq!(e.run(1_000_000), RunOutcome::Halted);
    assert_eq!(e.stats.blocks(), blocks_after_first, "no retranslation");
    assert_eq!(e.stats.exec.translation_cycles, trans_after_first);
    assert_eq!(e.guest_reg(ArmReg::R0), 0);
}
