//! Hand-written guest images that exercise the engine paths compiled
//! code rarely hits: cross-block condition-code consumption (the paper's
//! §5 machinery end-to-end), indirect branches, helper fallback, and
//! cache reuse across runs.

use ldbt_arm::{encode::assemble, AddrMode, ArmInstr, ArmReg, Cond, DpOp, Operand2};
use ldbt_compiler::ArmImage;
use ldbt_dbt::engine::{RunOutcome, Translator};
use ldbt_dbt::Engine;
use ldbt_learn::{Rule, RuleSet};
use ldbt_x86::{AluOp, Gpr, X86Instr};
use std::sync::Arc;

/// Wrap raw instructions into a runnable image at the standard base.
fn image_of(instrs: &[ArmInstr]) -> ArmImage {
    ArmImage {
        bytes: assemble(instrs).expect("encodable"),
        base: ldbt_compiler::link::CODE_BASE,
        entry: ldbt_compiler::link::CODE_BASE,
        func_addrs: vec![("raw".into(), ldbt_compiler::link::CODE_BASE)],
        meta: vec![(ldbt_isa::SourceLoc::NONE, None); instrs.len()],
        globals: vec![],
    }
}

fn run_all_engines(image: &ArmImage, rules: Arc<RuleSet>) -> Vec<(String, u32, u32)> {
    // Reference.
    let mut m = ldbt_arm::ArmMachine::new();
    image.load_into(&mut m.state.mem);
    m.state.regs[15] = image.entry;
    assert_eq!(m.run(1_000_000), ldbt_arm::ArmStop::Halt);
    let want_r0 = m.state.reg(ArmReg::R0);
    let want_r4 = m.state.reg(ArmReg::R4);
    let mut out = Vec::new();
    for t in [
        Translator::Tcg,
        Translator::Jit,
        Translator::Rules(Arc::clone(&rules)),
        Translator::RulesNoLazyFlags(rules.clone()),
    ] {
        let label = format!("{t:?}");
        let mut e = Engine::new(image, t);
        assert_eq!(e.run(100_000_000), RunOutcome::Halted, "{label}");
        assert_eq!(e.guest_reg(ArmReg::R0), want_r0, "{label} r0");
        assert_eq!(e.guest_reg(ArmReg::R4), want_r4, "{label} r4");
        out.push((label, e.guest_reg(ArmReg::R0), e.guest_reg(ArmReg::R4)));
    }
    out
}

/// A rule for `subs r, r, #imm` → `subl $imm, r` so the rule engine
/// covers the flag-producing block (C is emulated with sub polarity,
/// hence `unemulated_flags == 0`).
fn subs_rule() -> Rule {
    Rule {
        guest: vec![ArmInstr::dps(DpOp::Sub, ArmReg::R0, ArmReg::R0, Operand2::Imm(1))],
        host: vec![X86Instr::alu_ri(AluOp::Sub, Gpr::Ecx, 1)],
        host_reg_of: [(Gpr::Ecx, ArmReg::R0)].into_iter().collect(),
        imm_params: vec![ldbt_learn::rule::ImmParam {
            guest_site: (0, ldbt_learn::rule::ImmSlot::Data),
            extra_guest_sites: vec![],
            template_value: 1,
            host_sites: vec![(0, ldbt_learn::rule::ImmSlot::Data, ldbt_learn::rule::ImmRel::Id)],
        }],
        unemulated_flags: 0,
        has_branch: false,
    }
}

/// Flags set in one block, consumed by a *different* block: the rule
/// engine must save host flags lazily and the consumer must materialize
/// them through the flag-mode stub.
#[test]
fn cross_block_flag_consumption() {
    // b +0 forces a block boundary between the flag producer and the
    // conditional branch.
    let prog = vec![
        ArmInstr::mov(ArmReg::R0, Operand2::Imm(3)),
        ArmInstr::mov(ArmReg::R4, Operand2::Imm(0)),
        // loop:
        ArmInstr::dp(DpOp::Add, ArmReg::R4, ArmReg::R4, Operand2::Imm(5)),
        ArmInstr::dps(DpOp::Sub, ArmReg::R0, ArmReg::R0, Operand2::Imm(1)), // flags!
        ArmInstr::B { offset: 0, cond: Cond::Al },                          // block boundary
        ArmInstr::B { offset: -4, cond: Cond::Ne }, // consumes Z cross-block
        ArmInstr::Svc { imm: 0, cond: Cond::Al },
    ];
    let mut rules = RuleSet::new();
    rules.insert(subs_rule());
    let results = run_all_engines(&image_of(&prog), Arc::new(rules));
    for (label, r0, r4) in &results {
        assert_eq!(*r0, 0, "{label}");
        assert_eq!(*r4, 15, "{label}");
    }
}

/// Carry consumed across blocks (unsigned comparison polarity through
/// the saved-flag path).
#[test]
fn cross_block_carry_polarity() {
    let prog = vec![
        ArmInstr::mov(ArmReg::R0, Operand2::Imm(7)),
        ArmInstr::cmp(ArmReg::R0, Operand2::Imm(9)), // 7 < 9: C clear (borrow)
        ArmInstr::B { offset: 0, cond: Cond::Al },   // boundary
        // cs would skip; cc taken:
        ArmInstr::Dp {
            op: DpOp::Mov,
            rd: ArmReg::R4,
            rn: ArmReg::R0,
            op2: Operand2::Imm(111),
            set_flags: false,
            cond: Cond::Al,
        },
        ArmInstr::B { offset: 1, cond: Cond::Cc }, // taken (C clear)
        ArmInstr::mov(ArmReg::R4, Operand2::Imm(222)), // skipped
        ArmInstr::Svc { imm: 0, cond: Cond::Al },
    ];
    // Rule covering cmp so flags end up host-side.
    let mut rules = RuleSet::new();
    rules.insert(Rule {
        guest: vec![ArmInstr::cmp(ArmReg::R0, Operand2::Imm(9))],
        host: vec![X86Instr::alu_ri(AluOp::Cmp, Gpr::Ecx, 9)],
        host_reg_of: [(Gpr::Ecx, ArmReg::R0)].into_iter().collect(),
        imm_params: vec![],
        unemulated_flags: 0,
        has_branch: false,
    });
    let results = run_all_engines(&image_of(&prog), Arc::new(rules));
    for (label, _, r4) in &results {
        assert_eq!(*r4, 111, "{label}");
    }
}

/// Indirect branches through `bx` (computed dispatch).
#[test]
fn indirect_dispatch() {
    let base = ldbt_compiler::link::CODE_BASE;
    let prog = vec![
        // r1 = address of target (instr 5)
        ArmInstr::mov(ArmReg::R1, Operand2::Imm(5 * 4)),
        ArmInstr::dp(DpOp::Add, ArmReg::R1, ArmReg::R1, Operand2::Imm(base & 0xfff)),
        // base is 0x10000: materialize via shift
        ArmInstr::mov(ArmReg::R2, Operand2::Imm(1)),
        ArmInstr::dp(
            DpOp::Add,
            ArmReg::R1,
            ArmReg::R1,
            Operand2::RegShift(ArmReg::R2, ldbt_arm::Shift::Lsl(16)),
        ),
        ArmInstr::Bx { rm: ArmReg::R1, cond: Cond::Al },
        // target:
        ArmInstr::mov(ArmReg::R0, Operand2::Imm(99)),
        ArmInstr::Svc { imm: 0, cond: Cond::Al },
    ];
    let results = run_all_engines(&image_of(&prog), Arc::new(RuleSet::new()));
    for (label, r0, _) in &results {
        assert_eq!(*r0, 99, "{label}");
    }
}

/// Predicated memory operations go through the interpreter helper.
#[test]
fn predicated_memory_helper_fallback() {
    let prog = vec![
        ArmInstr::mov(ArmReg::R1, Operand2::Imm(0x800)),
        ArmInstr::mov(ArmReg::R0, Operand2::Imm(42)),
        ArmInstr::cmp(ArmReg::R0, Operand2::Imm(42)),
        // streq r0, [r1] — executes (Z set).
        ArmInstr::Str {
            rt: ArmReg::R0,
            addr: AddrMode::Imm(ArmReg::R1, 0),
            width: ldbt_isa::Width::W32,
            cond: Cond::Eq,
        },
        // strne r0, [r1, #4] — suppressed.
        ArmInstr::Str {
            rt: ArmReg::R0,
            addr: AddrMode::Imm(ArmReg::R1, 4),
            width: ldbt_isa::Width::W32,
            cond: Cond::Ne,
        },
        ArmInstr::ldr(ArmReg::R4, AddrMode::Imm(ArmReg::R1, 0)),
        ArmInstr::Svc { imm: 0, cond: Cond::Al },
    ];
    let image = image_of(&prog);
    let mut e = Engine::new(&image, Translator::Tcg);
    assert_eq!(e.run(1_000_000), RunOutcome::Halted);
    assert_eq!(e.guest_reg(ArmReg::R4), 42);
    assert!(e.stats.helper_steps() > 0, "helper must have been used");
    assert_eq!(e.state.mem.read(0x804, ldbt_isa::Width::W32), 0, "suppressed store");
}

/// The code cache is reused across a reset: the second run translates
/// nothing new.
#[test]
fn cache_reuse_across_reset() {
    let prog = vec![
        ArmInstr::mov(ArmReg::R0, Operand2::Imm(7)),
        ArmInstr::dps(DpOp::Sub, ArmReg::R0, ArmReg::R0, Operand2::Imm(1)),
        ArmInstr::B { offset: -2, cond: Cond::Ne },
        ArmInstr::Svc { imm: 0, cond: Cond::Al },
    ];
    let image = image_of(&prog);
    let mut e = Engine::new(&image, Translator::Tcg);
    assert_eq!(e.run(1_000_000), RunOutcome::Halted);
    let blocks_after_first = e.stats.blocks();
    let trans_after_first = e.stats.exec.translation_cycles;
    e.reset();
    assert_eq!(e.run(1_000_000), RunOutcome::Halted);
    assert_eq!(e.stats.blocks(), blocks_after_first, "no retranslation");
    assert_eq!(e.stats.exec.translation_cycles, trans_after_first);
    assert_eq!(e.guest_reg(ArmReg::R0), 0);
}

/// Satellite: a reset with *unchanged* guest bytes must not purge
/// anything (the checksum sweep is a no-op on a clean reload).
#[test]
fn reset_with_unchanged_bytes_keeps_cache() {
    let prog = vec![
        ArmInstr::mov(ArmReg::R0, Operand2::Imm(7)),
        ArmInstr::dps(DpOp::Sub, ArmReg::R0, ArmReg::R0, Operand2::Imm(1)),
        ArmInstr::B { offset: -2, cond: Cond::Ne },
        ArmInstr::Svc { imm: 0, cond: Cond::Al },
    ];
    let image = image_of(&prog);
    let mut e = Engine::new(&image, Translator::Tcg);
    assert_eq!(e.run(1_000_000), RunOutcome::Halted);
    e.reset();
    assert_eq!(e.stats.smc_invalidations(), 0, "clean reset must not invalidate");
    assert_eq!(e.run(1_000_000), RunOutcome::Halted);
    assert_eq!(e.guest_reg(ArmReg::R0), 0);
}

/// Satellite regression: `Engine::reset` used to keep the translated
/// cache verbatim while callers reloaded different guest bytes — the
/// second run then executed the *old* program. Reset must
/// checksum-revalidate and purge blocks whose bytes changed.
#[test]
fn reset_purges_blocks_whose_guest_bytes_changed() {
    let image = image_of(&[
        ArmInstr::mov(ArmReg::R0, Operand2::Imm(7)),
        ArmInstr::Svc { imm: 0, cond: Cond::Al },
    ]);
    let mut e = Engine::new(&image, Translator::Tcg);
    assert_eq!(e.run(1_000_000), RunOutcome::Halted);
    assert_eq!(e.guest_reg(ArmReg::R0), 7);
    // Reload a different program at the same addresses.
    let other = image_of(&[
        ArmInstr::mov(ArmReg::R0, Operand2::Imm(42)),
        ArmInstr::Svc { imm: 0, cond: Cond::Al },
    ]);
    other.load_into(&mut e.state.mem);
    e.reset();
    assert!(e.stats.smc_invalidations() > 0, "stale block must be purged at reset");
    assert_eq!(e.run(1_000_000), RunOutcome::Halted);
    assert_eq!(e.guest_reg(ArmReg::R0), 42, "second run must execute the reloaded bytes");
}

/// The adversarial SMC shape for the purge paths: a loop block that is
/// simultaneously an IBTC hit (entered via `bx`), chained (its own
/// back-edge, plus a pending back-patch from the oversized entry
/// block), and then overwritten by a guest store. Every engine must
/// keep matching the interpreter: a stale IBTC slot or surviving chain
/// patch would re-run the old body and diverge.
#[test]
fn smc_store_into_ibtc_hit_chained_block() {
    let base = ldbt_compiler::link::CODE_BASE;
    let prog = vec![
        // r5 = address of the loop body T (word 6).
        /* 0 */
        ArmInstr::mov(ArmReg::R4, Operand2::Imm(1)),
        /* 1 */
        ArmInstr::mov(ArmReg::R4, Operand2::RegShift(ArmReg::R4, ldbt_arm::Shift::Lsl(16))),
        /* 2 */ ArmInstr::dp(DpOp::Add, ArmReg::R5, ArmReg::R4, Operand2::Imm(6 * 4)),
        /* 3 */ ArmInstr::mov(ArmReg::R0, Operand2::Imm(0)),
        /* 4 */ ArmInstr::mov(ArmReg::R3, Operand2::Imm(3)), // phases
        /* 5 */ ArmInstr::mov(ArmReg::R2, Operand2::Imm(4)), // inner counter
        // T: self-chained inner loop, also the bx target below.
        /* 6 */
        ArmInstr::dp(DpOp::Add, ArmReg::R0, ArmReg::R0, Operand2::Imm(10)), // patched
        /* 7 */ ArmInstr::dps(DpOp::Sub, ArmReg::R2, ArmReg::R2, Operand2::Imm(1)),
        /* 8 */ ArmInstr::B { offset: -3, cond: Cond::Ne },
        // Patch T's first instruction: imm += 1.
        /* 9 */
        ArmInstr::ldr(ArmReg::R6, AddrMode::Imm(ArmReg::R5, 0)),
        /* 10 */ ArmInstr::dp(DpOp::Add, ArmReg::R6, ArmReg::R6, Operand2::Imm(1)),
        /* 11 */ ArmInstr::str(ArmReg::R6, AddrMode::Imm(ArmReg::R5, 0)),
        /* 12 */ ArmInstr::dps(DpOp::Sub, ArmReg::R3, ArmReg::R3, Operand2::Imm(1)),
        /* 13 */ ArmInstr::B { offset: 2, cond: Cond::Eq }, // -> svc
        /* 14 */ ArmInstr::mov(ArmReg::R2, Operand2::Imm(4)),
        /* 15 */
        ArmInstr::Bx { rm: ArmReg::R5, cond: Cond::Al }, // IBTC re-entry into T
        /* 16 */ ArmInstr::Svc { imm: 0, cond: Cond::Al },
    ];
    assert_eq!(base, 0x10000, "address materialization above assumes the standard base");
    // Phases add 4x10, 4x11, 4x12.
    let want = 4 * (10 + 11 + 12);
    let results = run_all_engines(&image_of(&prog), Arc::new(RuleSet::new()));
    for (label, r0, _) in &results {
        assert_eq!(*r0, want, "{label}");
    }
    // The store must have invalidated at least the two overlapping
    // translations (entry block and T) on the first patch alone.
    let mut e = Engine::new(&image_of(&prog), Translator::Tcg);
    assert_eq!(e.run(1_000_000), RunOutcome::Halted);
    assert_eq!(e.guest_reg(ArmReg::R0), want);
    assert!(
        e.stats.smc_invalidations() >= 3,
        "three patches, each hitting a live block: {}",
        e.stats.smc_invalidations()
    );
    assert!(e.stats.traps() == 0, "svc #0 is a halt, not a trap");
}

/// The SMC workload must reach bit-identical final guest state across
/// every engine x chaining x superblocks x watchdog combination, with
/// invalidations observed on each (tentpole acceptance).
#[test]
fn smc_workload_bit_identical_across_matrix() {
    use ldbt_workloads::asm::{smc_image, SMC_BODY_WORD, SMC_RESULT};
    let image = smc_image();
    // Interpreter reference: final registers and the patched code word.
    let mut m = ldbt_arm::ArmMachine::new();
    image.load_into(&mut m.state.mem);
    m.state.regs[15] = image.entry;
    assert_eq!(m.run(10_000_000), ldbt_arm::ArmStop::Halt);
    assert_eq!(m.state.reg(ArmReg::R0), SMC_RESULT);
    let body_addr = ldbt_compiler::link::CODE_BASE + 4 * SMC_BODY_WORD;
    let want_body = m.state.mem.read(body_addr, ldbt_isa::Width::W32);
    let mut rules = RuleSet::new();
    rules.insert(subs_rule());
    let rules = Arc::new(rules);
    for t in [Translator::Tcg, Translator::Jit, Translator::Rules(Arc::clone(&rules))] {
        for chaining in [true, false] {
            for sb in [None, Some(8)] {
                for wd in [None, Some(1)] {
                    let label = format!("{t:?} chain={chaining} sb={sb:?} wd={wd:?}");
                    let mut e = Engine::new(&image, t.clone())
                        .with_chaining(chaining)
                        .with_superblocks(sb)
                        .with_watchdog(wd);
                    assert_eq!(e.run(100_000_000), RunOutcome::Halted, "{label}");
                    for r in ArmReg::ALL {
                        if r != ArmReg::Pc {
                            assert_eq!(e.guest_reg(r), m.state.reg(r), "{label} {r:?}");
                        }
                    }
                    assert_eq!(e.guest_mem(body_addr), want_body, "{label} patched word");
                    assert!(e.stats.smc_invalidations() > 0, "{label}: no invalidations seen");
                }
            }
        }
    }
}

/// Satellite: builder-forced superblock threshold edge values. `Some(0)`
/// must neither form a region on the first execution nor divide by
/// zero while profiling; `Some(u64::MAX)` simply never triggers.
#[test]
fn superblock_threshold_zero_and_max_are_inert() {
    // A branchy loop (multi-block chain) so regions *can* form.
    let prog = vec![
        /* 0 */ ArmInstr::mov(ArmReg::R0, Operand2::Imm(0)),
        /* 1 */ ArmInstr::mov(ArmReg::R1, Operand2::Imm(200)),
        // loop:
        /* 2 */
        ArmInstr::dp(DpOp::Tst, ArmReg::R0, ArmReg::R1, Operand2::Imm(1)),
        /* 3 */ ArmInstr::B { offset: 2, cond: Cond::Eq }, // -> else
        /* 4 */ ArmInstr::dp(DpOp::Add, ArmReg::R0, ArmReg::R0, Operand2::Reg(ArmReg::R1)),
        /* 5 */ ArmInstr::B { offset: 1, cond: Cond::Al }, // -> join
        /* 6 */ ArmInstr::dp(DpOp::Eor, ArmReg::R0, ArmReg::R0, Operand2::Imm(5)),
        // join:
        /* 7 */
        ArmInstr::dps(DpOp::Sub, ArmReg::R1, ArmReg::R1, Operand2::Imm(1)),
        /* 8 */ ArmInstr::B { offset: -7, cond: Cond::Ne },
        /* 9 */ ArmInstr::Svc { imm: 0, cond: Cond::Al },
    ];
    let image = image_of(&prog);
    let mut m = ldbt_arm::ArmMachine::new();
    image.load_into(&mut m.state.mem);
    m.state.regs[15] = image.entry;
    assert_eq!(m.run(1_000_000), ldbt_arm::ArmStop::Halt);
    let want = m.state.reg(ArmReg::R0);
    for threshold in [0, u64::MAX] {
        let mut e = Engine::new(&image, Translator::Tcg).with_superblocks(Some(threshold));
        assert_eq!(e.run(1_000_000), RunOutcome::Halted, "threshold {threshold}");
        assert_eq!(e.guest_reg(ArmReg::R0), want);
        assert_eq!(e.stats.sb_execs(), 0, "threshold {threshold} must never form a region");
        assert_eq!(e.live_regions(), 0, "threshold {threshold} must never form a region");
    }
    // Sanity: a small positive threshold does form regions on this loop.
    let mut e = Engine::new(&image, Translator::Tcg).with_superblocks(Some(8));
    assert_eq!(e.run(1_000_000), RunOutcome::Halted);
    assert_eq!(e.guest_reg(ArmReg::R0), want);
    assert!(e.stats.sb_execs() > 0, "threshold 8 should form and run regions");
}

/// Guest traps surface as `RunOutcome::Trap`, never a panic: an
/// undecodable word, a wild store, and a non-halt `svc` each exit
/// translated code with the right cause, and the engine stays usable.
#[test]
fn guest_traps_exit_cleanly() {
    use ldbt_dbt::TrapKind;
    let base = ldbt_compiler::link::CODE_BASE;
    // svc #7 at word 1.
    let image = image_of(&[
        ArmInstr::mov(ArmReg::R0, Operand2::Imm(5)),
        ArmInstr::Svc { imm: 7, cond: Cond::Al },
        ArmInstr::Svc { imm: 0, cond: Cond::Al },
    ]);
    let mut e = Engine::new(&image, Translator::Tcg);
    assert_eq!(e.run(1_000_000), RunOutcome::Trap { pc: base + 4, cause: TrapKind::Svc(7) });
    assert_eq!(e.guest_reg(ArmReg::R0), 5, "registers written back at the trap");
    assert_eq!(e.stats.traps(), 1);
    // The driver can resume past the trap; the run then halts.
    e.set_guest_pc(base + 8);
    assert_eq!(e.run(1_000_000), RunOutcome::Halted);
    // Undecodable word: trap-translated, Undef cause.
    let mut bytes = assemble(&[ArmInstr::mov(ArmReg::R0, Operand2::Imm(1))]).unwrap();
    bytes.extend_from_slice(&0xffff_ffffu32.to_le_bytes());
    let image =
        ArmImage { bytes, base, entry: base, func_addrs: vec![], meta: vec![], globals: vec![] };
    let mut e = Engine::new(&image, Translator::Tcg);
    assert_eq!(e.run(1_000_000), RunOutcome::Trap { pc: base + 4, cause: TrapKind::Undef });
    // Wild store: Mem cause with the faulting address.
    let image = image_of(&[
        ArmInstr::Dp {
            op: DpOp::Mvn,
            rd: ArmReg::R6,
            rn: ArmReg::R0,
            op2: Operand2::Imm(7),
            set_flags: false,
            cond: Cond::Al,
        },
        ArmInstr::str(ArmReg::R0, AddrMode::Imm(ArmReg::R6, 0)),
        ArmInstr::Svc { imm: 0, cond: Cond::Al },
    ]);
    let mut e = Engine::new(&image, Translator::Tcg);
    match e.run(1_000_000) {
        RunOutcome::Trap { cause: TrapKind::Mem(addr), .. } => {
            assert_eq!(addr, 0xffff_fff8);
        }
        other => panic!("expected a Mem trap, got {other:?}"),
    }
}
