//! Adversarial tests: the verifier must reject wrong rules, and the DBT
//! must actually *execute* rule-generated code (a deliberately corrupted
//! rule changes program results — proving rules are load-bearing).

use ldbt_arm::{ArmInstr, ArmReg, DpOp, Operand2};
use ldbt_compiler::{link::build_arm_image, Options};
use ldbt_dbt::engine::{RunOutcome, Translator};
use ldbt_dbt::Engine;
use ldbt_learn::extract::SnippetPair;
use ldbt_learn::param::initial_mappings;
use ldbt_learn::verify::verify;
use ldbt_learn::{FaultPlan, FaultSite, Rule, RuleSet};
use ldbt_x86::{AluOp, Gpr, X86Instr};
use std::sync::Arc;

fn learn_one(guest: Vec<ArmInstr>, host: Vec<X86Instr>) -> Result<Rule, String> {
    let pair = SnippetPair {
        loc: ldbt_isa::SourceLoc::line(1),
        func: "f".into(),
        guest: guest.into_iter().map(|g| (g, None)).collect(),
        host: host.into_iter().map(|h| (h, None)).collect(),
    };
    let mappings = initial_mappings(&pair).map_err(|e| format!("{e:?}"))?;
    let mut last = Err("no mapping".to_string());
    for m in &mappings {
        match verify(&pair, m) {
            Ok(r) => return Ok(r),
            Err(e) => last = Err(format!("{e:?}")),
        }
    }
    last
}

/// Mutating any single host instruction of a correct rule into a
/// different ALU operation must make verification fail.
#[test]
fn verifier_rejects_mutated_host_code() {
    let guest = vec![
        ArmInstr::dp(DpOp::Add, ArmReg::R1, ArmReg::R1, Operand2::Reg(ArmReg::R0)),
        ArmInstr::dp(DpOp::Eor, ArmReg::R2, ArmReg::R1, Operand2::Imm(9)),
    ];
    let host = vec![
        X86Instr::alu_rr(AluOp::Add, Gpr::Edx, Gpr::Eax),
        X86Instr::mov_rr(Gpr::Ecx, Gpr::Edx),
        X86Instr::alu_ri(AluOp::Xor, Gpr::Ecx, 9),
    ];
    assert!(learn_one(guest.clone(), host.clone()).is_ok(), "base rule verifies");
    // Mutations: swap each ALU opcode for a wrong one.
    let mutations: Vec<Vec<X86Instr>> = vec![
        vec![
            X86Instr::alu_rr(AluOp::Sub, Gpr::Edx, Gpr::Eax), // add → sub
            host[1],
            host[2],
        ],
        vec![
            host[0],
            host[1],
            X86Instr::alu_ri(AluOp::Or, Gpr::Ecx, 9), // xor → or
        ],
        vec![
            host[0],
            host[1],
            X86Instr::alu_ri(AluOp::Xor, Gpr::Ecx, 8), // wrong immediate
        ],
        vec![
            host[0],
            X86Instr::mov_rr(Gpr::Ecx, Gpr::Eax), // copies the wrong source
            host[2],
        ],
    ];
    for (i, m) in mutations.into_iter().enumerate() {
        assert!(learn_one(guest.clone(), m).is_err(), "mutation {i} must be rejected");
    }
}

/// Flag-polarity confusion must be caught: emulating ARM `cs` with x86
/// `b` (instead of `ae`) is refuted by the branch-condition check.
#[test]
fn verifier_rejects_carry_polarity_swap() {
    let guest = vec![
        ArmInstr::cmp(ArmReg::R2, Operand2::Reg(ArmReg::R3)),
        ArmInstr::B { offset: 4, cond: ldbt_arm::Cond::Cs },
    ];
    let good = vec![
        X86Instr::alu_rr(AluOp::Cmp, Gpr::Ecx, Gpr::Ebx),
        X86Instr::Jcc { cc: ldbt_x86::Cc::Ae, target: 0 },
    ];
    let bad = vec![
        X86Instr::alu_rr(AluOp::Cmp, Gpr::Ecx, Gpr::Ebx),
        X86Instr::Jcc { cc: ldbt_x86::Cc::B, target: 0 },
    ];
    assert!(learn_one(guest.clone(), good).is_ok());
    assert!(learn_one(guest, bad).is_err());
}

/// Rule code actually executes: injecting a subtly wrong rule directly
/// into the rule set (bypassing verification) changes the program's
/// result, proving the engine runs rule-generated host code rather than
/// silently falling back to TCG.
#[test]
fn rules_are_load_bearing() {
    let src = "
int main() {
  int s = 0;
  for (int i = 0; i < 10; i += 1) { s = s + i; s = s ^ 3; }
  return s;
}";
    let image = build_arm_image(src, &Options::o2()).unwrap();
    let mut base = Engine::new(&image, Translator::Tcg);
    assert_eq!(base.run(10_000_000), RunOutcome::Halted);
    let want = base.guest_reg(ArmReg::R0);

    // A wrong "rule": eor r, r, #imm → xorl $(imm+1).
    let mut evil = RuleSet::new();
    evil.insert(Rule {
        guest: vec![ArmInstr::dp(DpOp::Eor, ArmReg::R0, ArmReg::R0, Operand2::Imm(3))],
        host: vec![X86Instr::alu_ri(AluOp::Xor, Gpr::Ecx, 2)],
        host_reg_of: [(Gpr::Ecx, ArmReg::R0)].into_iter().collect(),
        imm_params: vec![],
        unemulated_flags: 0,
        has_branch: false,
    });
    let mut evil_engine =
        Engine::new(&image, Translator::Rules(Arc::new(evil))).with_watchdog(None).with_fault(None);
    assert_eq!(evil_engine.run(10_000_000), RunOutcome::Halted);
    assert_ne!(
        evil_engine.guest_reg(ArmReg::R0),
        want,
        "the corrupted rule must visibly change the result (rules execute)"
    );
    assert!(evil_engine.stats.guest_dyn_covered() > 0);
}

/// The watchdog catches the same deliberately corrupted rule within its
/// sampling window, tombstones it exactly once, and the run completes
/// with output identical to the pure-TCG run.
#[test]
fn watchdog_quarantines_corrupted_rule() {
    let src = "
int main() {
  int s = 0;
  for (int i = 0; i < 10; i += 1) { s = s + i; s = s ^ 3; }
  return s;
}";
    let image = build_arm_image(src, &Options::o2()).unwrap();
    let mut base = Engine::new(&image, Translator::Tcg).with_watchdog(None).with_fault(None);
    assert_eq!(base.run(10_000_000), RunOutcome::Halted);
    let want = base.guest_reg(ArmReg::R0);

    // The same wrong "rule" as `rules_are_load_bearing` — injected past
    // verification straight into the rule set.
    let mut evil = RuleSet::new();
    evil.insert(Rule {
        guest: vec![ArmInstr::dp(DpOp::Eor, ArmReg::R0, ArmReg::R0, Operand2::Imm(3))],
        host: vec![X86Instr::alu_ri(AluOp::Xor, Gpr::Ecx, 2)],
        host_reg_of: [(Gpr::Ecx, ArmReg::R0)].into_iter().collect(),
        imm_params: vec![],
        unemulated_flags: 0,
        has_branch: false,
    });
    let mut e = Engine::new(&image, Translator::Rules(Arc::new(evil)))
        .with_watchdog(Some(1))
        .with_fault(None);
    assert_eq!(e.run(10_000_000), RunOutcome::Halted);
    assert_eq!(
        e.guest_reg(ArmReg::R0),
        want,
        "after quarantine the run must produce the TCG result"
    );
    assert!(e.stats.watchdog_checks() > 0, "the corrupted block was sampled");
    assert_eq!(e.stats.quarantined_rules(), 1, "the one bad rule is tombstoned exactly once");
}

/// A quarantine purge must also sever chained links: blocks that were
/// directly linked into the purged translation fall back to the
/// dispatcher (and re-chain to the clean retranslation), so the run
/// still ends with the pure-TCG result instead of jumping into a stale
/// or tombstoned block.
#[test]
fn quarantine_unlinks_chained_predecessors() {
    let src = "
int main() {
  int s = 0;
  for (int i = 0; i < 10; i += 1) { s = s + i; s = s ^ 3; }
  return s;
}";
    let image = build_arm_image(src, &Options::o2()).unwrap();
    let mut base = Engine::new(&image, Translator::Tcg).with_watchdog(None).with_fault(None);
    assert_eq!(base.run(10_000_000), RunOutcome::Halted);
    let want = base.guest_reg(ArmReg::R0);

    // Same deliberately wrong rule as `watchdog_quarantines_corrupted_rule`,
    // but with block chaining explicitly on: by the time the watchdog
    // samples the corrupted block, its predecessors have chained into it.
    let mut evil = RuleSet::new();
    evil.insert(Rule {
        guest: vec![ArmInstr::dp(DpOp::Eor, ArmReg::R0, ArmReg::R0, Operand2::Imm(3))],
        host: vec![X86Instr::alu_ri(AluOp::Xor, Gpr::Ecx, 2)],
        host_reg_of: [(Gpr::Ecx, ArmReg::R0)].into_iter().collect(),
        imm_params: vec![],
        unemulated_flags: 0,
        has_branch: false,
    });
    let mut e = Engine::new(&image, Translator::Rules(Arc::new(evil)))
        .with_chaining(true)
        .with_watchdog(Some(1))
        .with_fault(None);
    assert_eq!(e.run(10_000_000), RunOutcome::Halted);
    assert_eq!(e.guest_reg(ArmReg::R0), want, "post-quarantine run matches TCG");
    assert_eq!(e.stats.quarantined_rules(), 1, "the bad rule is tombstoned");
    assert!(e.stats.chain_links() > 0, "blocks were chained before the purge");
    assert!(
        e.stats.chain_unlinks() > 0,
        "purging the corrupted block severed its incoming chained links"
    );
}

/// A corrupted rule that has already been inlined into a superblock must
/// not survive eviction: when the watchdog catches the mismatch inside
/// the region, the quarantine purge invalidates the region (its parts
/// hold clones of the purged code), severs the chained predecessors, and
/// the loop re-forms a fresh region from the clean retranslation.
///
/// The lazy watchdog (period 50, so the region has time to form and run
/// before the first sample) only repairs the *checked* execution, so the
/// iterations the bad rule corrupted before the catch stay corrupted.
/// The guest therefore resets the accumulator to a constant late in the
/// loop: everything after `i == 1500` runs on the post-eviction clean
/// translation, making the final result comparable against pure TCG.
#[test]
fn quarantine_evicts_rule_inside_superblock() {
    let src = "
int main() {
  int s = 0;
  for (int i = 0; i < 2000; i += 1) {
    s = s + i;
    s = s ^ 3;
    if (i == 1500) { s = 7; }
  }
  return s & 0xffff;
}";
    let image = build_arm_image(src, &Options::o2()).unwrap();
    let mut base = Engine::new(&image, Translator::Tcg).with_watchdog(None).with_fault(None);
    assert_eq!(base.run(10_000_000), RunOutcome::Halted);
    let want = base.guest_reg(ArmReg::R0);

    // The same deliberately wrong rule as the quarantine tests above. The
    // low formation threshold (8) against the lazy watchdog period (50)
    // guarantees the hot loop is already running as a region — bad rule
    // inlined — by the time the watchdog first samples it.
    let mut evil = RuleSet::new();
    evil.insert(Rule {
        guest: vec![ArmInstr::dp(DpOp::Eor, ArmReg::R0, ArmReg::R0, Operand2::Imm(3))],
        host: vec![X86Instr::alu_ri(AluOp::Xor, Gpr::Ecx, 2)],
        host_reg_of: [(Gpr::Ecx, ArmReg::R0)].into_iter().collect(),
        imm_params: vec![],
        unemulated_flags: 0,
        has_branch: false,
    });
    let mut e = Engine::new(&image, Translator::Rules(Arc::new(evil)))
        .with_chaining(true)
        .with_watchdog(Some(50))
        .with_superblocks(Some(8))
        .with_fault(None);
    assert_eq!(e.run(10_000_000), RunOutcome::Halted);
    assert_eq!(e.guest_reg(ArmReg::R0), want, "post-eviction run matches TCG");
    assert_eq!(e.stats.quarantined_rules(), 1, "the bad rule is tombstoned");
    assert!(e.stats.sb_formed() >= 2, "a region formed before the purge and re-formed after");
    assert!(e.stats.sb_invalidated() >= 1, "the purge invalidated the region holding the rule");
    assert!(e.stats.chain_unlinks() > 0, "predecessors chained into the purge were severed");
    assert!(e.stats.sb_execs() > 0, "regions actually ran");
}

/// The self-healing loop end-to-end: a *learned* rule carrying an
/// immediate parameter is corrupted in place by the `imm-skew` fault
/// (its stored `ImmRel` is flipped at install time), the watchdog
/// catches the divergence, attributes it to that one rule, repairs it
/// against the counterexample, and hot-republishes it — no tombstone,
/// no TCG forcing — so the re-translated blocks finish the run with
/// output identical to pure TCG while the rule keeps applying.
#[test]
fn watchdog_repairs_imm_skewed_rule() {
    let src = "
int main() {
  int s = 0;
  for (int i = 0; i < 200; i += 1) { s = s + i; s = s ^ 3; }
  return s & 0xffff;
}";
    let image = build_arm_image(src, &Options::o2()).unwrap();
    let mut base = Engine::new(&image, Translator::Tcg).with_watchdog(None).with_fault(None);
    assert_eq!(base.run(10_000_000), RunOutcome::Halted);
    let want = base.guest_reg(ArmReg::R0);

    // A correct, verified rule with an immediate parameter — exactly the
    // shape `imm-skew` corrupts.
    let rule = learn_one(
        vec![ArmInstr::dp(DpOp::Eor, ArmReg::R0, ArmReg::R0, Operand2::Imm(3))],
        vec![X86Instr::alu_ri(AluOp::Xor, Gpr::Ecx, 3)],
    )
    .expect("the eor/xor rule verifies");
    assert!(!rule.imm_params.is_empty(), "the rule must be immediate-parameterized");
    let mut rules = RuleSet::new();
    rules.insert(rule);

    let fault = FaultPlan { site: FaultSite::ImmSkew, seed: 0 };
    let mut e = Engine::new(&image, Translator::Rules(Arc::new(rules)))
        .with_watchdog(Some(1))
        .with_fault(Some(fault))
        .with_repair(true);
    assert_eq!(e.run(10_000_000), RunOutcome::Halted);
    assert_eq!(e.guest_reg(ArmReg::R0), want, "the repaired run matches pure TCG");
    assert!(e.stats.watchdog_checks() > 0, "the corrupted block was sampled");
    assert_eq!(e.stats.wd_attributed(), 1, "the divergence is attributed to the one rule");
    assert_eq!(e.stats.wd_repair_attempts(), 1, "one repair attempt");
    assert_eq!(e.stats.wd_repaired(), 1, "the skewed rule is repaired, not quarantined");
    assert_eq!(e.stats.wd_repair_failed(), 0);
    assert_eq!(e.stats.quarantined_rules(), 0, "repair leaves no tombstone");
    assert_eq!(e.stats.wd_collateral(), 0, "attribution leaves no collateral damage");
    assert!(e.stats.guest_dyn_covered() > 0, "the repaired rule keeps applying");
}

/// An unrepairable rule exhausts the per-rule attempt cap and stays
/// tombstoned: the evil eor→xor$2 rule has no immediate parameter and
/// its templates re-learn to nothing its counterexample accepts, so the
/// single capped attempt fails, the rule is quarantined permanently, and
/// the run completes on the TCG path with the correct result.
#[test]
fn unrepairable_rule_hits_attempt_cap_and_stays_tombstoned() {
    let src = "
int main() {
  int s = 0;
  for (int i = 0; i < 10; i += 1) { s = s + i; s = s ^ 3; }
  return s;
}";
    let image = build_arm_image(src, &Options::o2()).unwrap();
    let mut base = Engine::new(&image, Translator::Tcg).with_watchdog(None).with_fault(None);
    assert_eq!(base.run(10_000_000), RunOutcome::Halted);
    let want = base.guest_reg(ArmReg::R0);

    let mut evil = RuleSet::new();
    evil.insert(Rule {
        guest: vec![ArmInstr::dp(DpOp::Eor, ArmReg::R0, ArmReg::R0, Operand2::Imm(3))],
        host: vec![X86Instr::alu_ri(AluOp::Xor, Gpr::Ecx, 2)],
        host_reg_of: [(Gpr::Ecx, ArmReg::R0)].into_iter().collect(),
        imm_params: vec![],
        unemulated_flags: 0,
        has_branch: false,
    });
    let mut e = Engine::new(&image, Translator::Rules(Arc::new(evil)))
        .with_watchdog(Some(1))
        .with_fault(None)
        .with_repair(true);
    assert_eq!(e.run(10_000_000), RunOutcome::Halted);
    assert_eq!(e.guest_reg(ArmReg::R0), want, "the quarantined run matches pure TCG");
    assert_eq!(e.stats.wd_attributed(), 1, "the single-application block attributes trivially");
    assert_eq!(e.stats.wd_repair_attempts(), 1, "exactly one attempt — the cap");
    assert_eq!(e.stats.wd_repaired(), 0, "the evil rule is unrepairable");
    assert_eq!(e.stats.wd_repair_failed(), 1);
    assert_eq!(e.stats.quarantined_rules(), 1, "the failed repair ends in a tombstone");
}

/// A skewed rule already inlined into a superblock is repaired in place:
/// the mismatch inside the region attributes to the rule, the repair
/// purge invalidates the region (its parts hold clones of the purged
/// code), and — because the rule survives repair instead of being
/// tombstoned — the loop re-forms a fresh region from the *repaired*
/// rule translation. Same guest structure as the eviction test above:
/// the accumulator reset at `i == 1500` makes the tail comparable
/// against pure TCG despite the pre-catch corrupted iterations.
#[test]
fn repaired_rule_inside_superblock_reforms_region() {
    let src = "
int main() {
  int s = 0;
  for (int i = 0; i < 2000; i += 1) {
    s = s + i;
    s = s ^ 3;
    if (i == 1500) { s = 7; }
  }
  return s & 0xffff;
}";
    let image = build_arm_image(src, &Options::o2()).unwrap();
    let mut base = Engine::new(&image, Translator::Tcg).with_watchdog(None).with_fault(None);
    assert_eq!(base.run(10_000_000), RunOutcome::Halted);
    let want = base.guest_reg(ArmReg::R0);

    let rule = learn_one(
        vec![ArmInstr::dp(DpOp::Eor, ArmReg::R0, ArmReg::R0, Operand2::Imm(3))],
        vec![X86Instr::alu_ri(AluOp::Xor, Gpr::Ecx, 3)],
    )
    .expect("the eor/xor rule verifies");
    let mut rules = RuleSet::new();
    rules.insert(rule);

    let fault = FaultPlan { site: FaultSite::ImmSkew, seed: 0 };
    let mut e = Engine::new(&image, Translator::Rules(Arc::new(rules)))
        .with_chaining(true)
        .with_watchdog(Some(50))
        .with_superblocks(Some(8))
        .with_fault(Some(fault))
        .with_repair(true);
    assert_eq!(e.run(10_000_000), RunOutcome::Halted);
    assert_eq!(e.guest_reg(ArmReg::R0), want, "the post-repair run matches pure TCG");
    assert_eq!(e.stats.wd_repaired(), 1, "the inlined rule is repaired");
    assert_eq!(e.stats.quarantined_rules(), 0, "repair leaves no tombstone");
    assert!(e.stats.sb_formed() >= 2, "a region formed before the purge and re-formed after");
    assert!(e.stats.sb_invalidated() >= 1, "the repair purge invalidated the stale region");
    assert!(e.stats.sb_execs() > 0, "regions actually ran");
    assert!(e.stats.guest_dyn_covered() > 0, "the repaired rule keeps applying");
}

/// The repair synthesizer's output is itself verified: a snippet whose
/// scratch materialization cannot be expressed as mov/lea is rejected,
/// not silently mistranslated.
#[test]
fn unsynthesizable_scratch_rejected() {
    // Guest computes r12 = r0 * r1 (not expressible as a single mov/lea
    // over mapped inputs) while the host ignores it.
    let guest = vec![
        ArmInstr::Mul {
            rd: ArmReg::R12,
            rn: ArmReg::R0,
            rm: ArmReg::R1,
            set_flags: false,
            cond: ldbt_arm::Cond::Al,
        },
        ArmInstr::dp(DpOp::Add, ArmReg::R2, ArmReg::R0, Operand2::Reg(ArmReg::R1)),
    ];
    let host = vec![X86Instr::Lea {
        dst: Gpr::Edx,
        addr: ldbt_x86::X86Mem { base: Some(Gpr::Eax), index: Some((Gpr::Ecx, 1)), disp: 0 },
    }];
    assert!(learn_one(guest, host).is_err());
}
