//! Cross-checking the symbolic executors against the concrete
//! interpreters: for random straight-line sequences and random inputs,
//! evaluating the symbolic outputs under the inputs must reproduce the
//! interpreter's final state — registers, flags, and stores.

use ldbt_arm::{ArmInstr, ArmReg, DpOp, Operand2, Shift};
use ldbt_smt::TermPool;
use ldbt_symexec::common::concrete_imms;
use ldbt_symexec::{exec_arm_seq, exec_x86_seq, MemOracle, SymArmState, SymX86State};
use ldbt_x86::{AluOp, Gpr, Operand, ShiftOp, UnOp, X86Instr, X86Mem};
use proptest::prelude::*;
use std::collections::HashMap;

fn low_reg() -> impl Strategy<Value = ArmReg> {
    (0usize..8).prop_map(ArmReg::from_index)
}

fn dp_op() -> impl Strategy<Value = DpOp> {
    (0usize..15).prop_map(|i| DpOp::ALL[i])
}

fn straightline_arm() -> impl Strategy<Value = Vec<ArmInstr>> {
    proptest::collection::vec(
        prop_oneof![
            (dp_op(), low_reg(), low_reg(), low_reg(), any::<bool>()).prop_map(
                |(op, rd, rn, rm, s)| ArmInstr::Dp {
                    op,
                    rd,
                    rn,
                    op2: Operand2::Reg(rm),
                    set_flags: s || op.is_compare(),
                    cond: ldbt_arm::Cond::Al,
                }
            ),
            (dp_op(), low_reg(), low_reg(), 0u32..4096, any::<bool>()).prop_map(
                |(op, rd, rn, v, s)| ArmInstr::Dp {
                    op,
                    rd,
                    rn,
                    op2: Operand2::Imm(v),
                    set_flags: s || op.is_compare(),
                    cond: ldbt_arm::Cond::Al,
                }
            ),
            (dp_op(), low_reg(), low_reg(), low_reg(), 1u8..32, 0u8..4).prop_map(
                |(op, rd, rn, rm, a, t)| {
                    let shift = match t {
                        0 => Shift::Lsl(a),
                        1 => Shift::Lsr(a),
                        2 => Shift::Asr(a),
                        _ => Shift::Ror(a),
                    };
                    ArmInstr::Dp {
                        op,
                        rd,
                        rn,
                        op2: Operand2::RegShift(rm, shift),
                        set_flags: op.is_compare(),
                        cond: ldbt_arm::Cond::Al,
                    }
                }
            ),
            (low_reg(), low_reg(), low_reg(), any::<bool>()).prop_map(|(rd, rn, rm, s)| {
                ArmInstr::Mul { rd, rn, rm, set_flags: s, cond: ldbt_arm::Cond::Al }
            }),
        ],
        1..8,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arm_symbolic_matches_interpreter(
        seq in straightline_arm(),
        inputs in proptest::collection::vec(any::<u32>(), 8),
        nzcv in 0u8..16,
    ) {
        // Symbolic execution with fresh symbols per register.
        let mut pool = TermPool::new();
        let init = SymArmState::fresh(&mut pool, "");
        let mut oracle = MemOracle::new();
        let out = exec_arm_seq(&mut pool, &seq, init, &mut oracle, &mut concrete_imms)
            .expect("straight-line sequences have no hazards");

        // Concrete interpretation from the same inputs.
        let mut arm = ldbt_arm::ArmState::new();
        for (i, v) in inputs.iter().enumerate() {
            arm.set_reg(ArmReg::from_index(i), *v);
        }
        arm.flags = ldbt_arm::Flags::from_nzcv(nzcv);
        for i in &seq {
            arm.exec(i);
        }

        // Environment: registers r0..r7 were interned first (symbols 0..15
        // in register order), then the flags gN..gV — resolve by name.
        let mut env: HashMap<u32, u64> = HashMap::new();
        let mut pool2 = pool.clone();
        let vals = inputs.iter().map(|&v| v as u64).chain(std::iter::repeat(0));
        for (i, val) in vals.take(16).enumerate() {
            let t = pool2.var(&format!("r{i}"), 32);
            if let ldbt_smt::term::Term::Var { sym, .. } = *pool2.term(t) {
                env.insert(sym, val);
            }
        }
        let f0 = ldbt_arm::Flags::from_nzcv(nzcv);
        for (name, b) in [("N", f0.n), ("Z", f0.z), ("C", f0.c), ("V", f0.v)] {
            let t = pool2.var(name, 1);
            if let ldbt_smt::term::Term::Var { sym, .. } = *pool2.term(t) {
                env.insert(sym, b as u64);
            }
        }

        for r in 0..8usize {
            let reg = ArmReg::from_index(r);
            let got = pool2.eval(out.state.reg(reg), &env) as u32;
            prop_assert_eq!(got, arm.reg(reg), "r{} after {:?}", r, seq);
        }
        prop_assert_eq!(pool2.eval(out.state.flags.n, &env) == 1, arm.flags.n, "N");
        prop_assert_eq!(pool2.eval(out.state.flags.z, &env) == 1, arm.flags.z, "Z");
        prop_assert_eq!(pool2.eval(out.state.flags.c, &env) == 1, arm.flags.c, "C");
        prop_assert_eq!(pool2.eval(out.state.flags.v, &env) == 1, arm.flags.v, "V");
    }
}

fn x86_straightline() -> impl Strategy<Value = Vec<X86Instr>> {
    let gpr = (0usize..4).prop_map(Gpr::from_index); // eax..ebx: byte-addressable
    proptest::collection::vec(
        prop_oneof![
            (0usize..9, gpr.clone(), gpr.clone())
                .prop_map(|(op, d, s)| { X86Instr::alu_rr(AluOp::ALL[op], d, s) }),
            (0usize..9, gpr.clone(), any::<i32>())
                .prop_map(|(op, d, v)| { X86Instr::alu_ri(AluOp::ALL[op], d, v) }),
            (gpr.clone(), gpr.clone()).prop_map(|(d, s)| X86Instr::mov_rr(d, s)),
            (gpr.clone(), any::<i32>()).prop_map(|(d, v)| X86Instr::mov_imm(d, v)),
            (0usize..3, gpr.clone(), 1u8..32).prop_map(|(op, d, c)| X86Instr::Shift {
                op: [ShiftOp::Shl, ShiftOp::Shr, ShiftOp::Sar][op],
                dst: Operand::Reg(d),
                count: c,
            }),
            (0usize..4, gpr.clone()).prop_map(|(op, d)| X86Instr::Un {
                op: [UnOp::Neg, UnOp::Not, UnOp::Inc, UnOp::Dec][op],
                dst: Operand::Reg(d),
            }),
            (gpr.clone(), gpr.clone())
                .prop_map(|(d, s)| X86Instr::Imul { dst: d, src: Operand::Reg(s) }),
            (gpr.clone(), gpr.clone(), -64i32..64)
                .prop_map(|(d, b, off)| X86Instr::Lea { dst: d, addr: X86Mem::base_disp(b, off) }),
            (0usize..14, gpr)
                .prop_map(|(cc, d)| X86Instr::Setcc { cc: ldbt_x86::Cc::ALL[cc], dst: d }),
        ],
        1..8,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn x86_symbolic_matches_interpreter(
        seq in x86_straightline(),
        inputs in proptest::collection::vec(any::<u32>(), 4),
        flag_bits in 0u8..16,
    ) {
        let mut pool = TermPool::new();
        let init = SymX86State::fresh(&mut pool, "");
        let mut oracle = MemOracle::new();
        let out = exec_x86_seq(&mut pool, &seq, init, &mut oracle, &mut concrete_imms)
            .expect("straight-line sequences have no hazards");

        let mut x86 = ldbt_x86::X86State::new();
        for (i, v) in inputs.iter().enumerate() {
            x86.set_reg(Gpr::from_index(i), *v);
        }
        x86.flags = ldbt_x86::EFlags {
            cf: flag_bits & 1 != 0,
            zf: flag_bits & 2 != 0,
            sf: flag_bits & 4 != 0,
            of: flag_bits & 8 != 0,
        };
        for i in &seq {
            x86.exec(i);
        }

        let mut env: HashMap<u32, u64> = HashMap::new();
        let mut pool2 = pool.clone();
        let names = ["eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"];
        for (i, n) in names.iter().enumerate() {
            let t = pool2.var(n, 32);
            if let ldbt_smt::term::Term::Var { sym, .. } = *pool2.term(t) {
                env.insert(sym, if i < 4 { inputs[i] as u64 } else { 0 });
            }
        }
        let f = ldbt_x86::EFlags {
            cf: flag_bits & 1 != 0,
            zf: flag_bits & 2 != 0,
            sf: flag_bits & 4 != 0,
            of: flag_bits & 8 != 0,
        };
        for (name, b) in [("fN", f.sf), ("fZ", f.zf), ("fC", f.cf), ("fV", f.of)] {
            let t = pool2.var(name, 1);
            if let ldbt_smt::term::Term::Var { sym, .. } = *pool2.term(t) {
                env.insert(sym, b as u64);
            }
        }

        for r in 0..4usize {
            let reg = Gpr::from_index(r);
            let got = pool2.eval(out.state.reg(reg), &env) as u32;
            prop_assert_eq!(got, x86.reg(reg), "{} after {:?}", reg, seq);
        }
        prop_assert_eq!(pool2.eval(out.state.flags.c, &env) == 1, x86.flags.cf, "CF");
        prop_assert_eq!(pool2.eval(out.state.flags.z, &env) == 1, x86.flags.zf, "ZF");
        prop_assert_eq!(pool2.eval(out.state.flags.n, &env) == 1, x86.flags.sf, "SF");
        prop_assert_eq!(pool2.eval(out.state.flags.v, &env) == 1, x86.flags.of, "OF");
    }
}
