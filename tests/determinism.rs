//! Parallel learning must be byte-identical to sequential learning.
//!
//! The pipeline's contract (ISSUE: "parallel and sequential runs
//! byte-identical"): for every suite program, learning with 4 worker
//! threads produces exactly the rules and Table-1 counters the
//! pure-sequential path produces — contents *and* rule-store iteration
//! order. Only the wall-clock durations may differ, so those are
//! excluded from the comparison via `LearnStats::counters`.

use ldbt_compiler::Options;
use ldbt_learn::cache::VerifyCache;
use ldbt_learn::pipeline::{learn_from_source_cached, LearnConfig};
use ldbt_learn::Rule;
use ldbt_workloads::{source, Workload, SUITE};

#[test]
fn parallel_learning_matches_sequential_on_the_suite() {
    let seq_cfg = LearnConfig { threads: 1, ..LearnConfig::default() };
    let par_cfg = LearnConfig { threads: 4, ..LearnConfig::default() };
    // Each side shares one memo cache across programs, like `learn_all`,
    // so cross-program cache hits are part of the compared behavior.
    let mut seq_cache = VerifyCache::new();
    let mut par_cache = VerifyCache::new();
    for b in &SUITE {
        let src = source(b, Workload::Ref);
        let s = learn_from_source_cached(b.name, &src, &Options::o2(), &seq_cfg, &mut seq_cache)
            .unwrap();
        let p = learn_from_source_cached(b.name, &src, &Options::o2(), &par_cfg, &mut par_cache)
            .unwrap();
        assert_eq!(
            s.stats.counters(),
            p.stats.counters(),
            "{}: Table-1 counters diverge between sequential and parallel",
            b.name
        );
        let order = |r: &ldbt_learn::RuleSet| -> Vec<String> {
            r.iter().map(Rule::canonical_text).collect()
        };
        assert_eq!(
            order(&s.rules),
            order(&p.rules),
            "{}: rule contents or iteration order diverge",
            b.name
        );
    }
    assert_eq!(seq_cache.len(), par_cache.len(), "memo caches diverge");
}

/// Panic isolation is invisible when nothing panics: with no fault
/// injected, learning is byte-identical with and without `isolate`, and
/// across thread counts — counters and the canonical rule dump both.
#[test]
fn isolation_and_thread_count_do_not_change_learning() {
    let programs = ["mcf", "libquantum"];
    let reference = {
        let cfg = LearnConfig { threads: 1, isolate: false, fault: None, ..LearnConfig::default() };
        learn_programs(&programs, &cfg)
    };
    for threads in [1, 2, 4] {
        for isolate in [false, true] {
            let cfg = LearnConfig { threads, isolate, fault: None, ..LearnConfig::default() };
            let got = learn_programs(&programs, &cfg);
            assert_eq!(reference, got, "learning diverged at threads={threads} isolate={isolate}");
        }
    }
}

/// Learn `programs` under `cfg` and return the comparable outcome:
/// per-program Table-1 counters plus the canonical rule dump.
fn learn_programs(programs: &[&str], cfg: &LearnConfig) -> Vec<([usize; 14], Vec<String>)> {
    let mut cache = VerifyCache::new();
    programs
        .iter()
        .map(|name| {
            let b = ldbt_workloads::benchmark(name).unwrap();
            let src = source(b, Workload::Ref);
            let r = learn_from_source_cached(name, &src, &Options::o2(), cfg, &mut cache).unwrap();
            (r.stats.counters(), r.rules.iter().map(Rule::canonical_text).collect())
        })
        .collect()
}
