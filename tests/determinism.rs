//! Parallel learning must be byte-identical to sequential learning.
//!
//! The pipeline's contract (ISSUE: "parallel and sequential runs
//! byte-identical"): for every suite program, learning with 4 worker
//! threads produces exactly the rules and Table-1 counters the
//! pure-sequential path produces — contents *and* rule-store iteration
//! order. Only the wall-clock durations may differ, so those are
//! excluded from the comparison via `LearnStats::counters`.

use ldbt_arm::ArmReg;
use ldbt_compiler::{link::build_arm_image, Options};
use ldbt_dbt::engine::{RunOutcome, Translator};
use ldbt_dbt::Engine;
use ldbt_learn::cache::VerifyCache;
use ldbt_learn::pipeline::{learn_from_source, learn_from_source_cached, LearnConfig};
use ldbt_learn::Rule;
use ldbt_workloads::{source, Workload, SUITE};
use std::sync::Arc;

#[test]
fn parallel_learning_matches_sequential_on_the_suite() {
    let seq_cfg = LearnConfig { threads: 1, ..LearnConfig::default() };
    let par_cfg = LearnConfig { threads: 4, ..LearnConfig::default() };
    // Each side shares one memo cache across programs, like `learn_all`,
    // so cross-program cache hits are part of the compared behavior.
    let mut seq_cache = VerifyCache::new();
    let mut par_cache = VerifyCache::new();
    for b in &SUITE {
        let src = source(b, Workload::Ref);
        let s = learn_from_source_cached(b.name, &src, &Options::o2(), &seq_cfg, &mut seq_cache)
            .unwrap();
        let p = learn_from_source_cached(b.name, &src, &Options::o2(), &par_cfg, &mut par_cache)
            .unwrap();
        assert_eq!(
            s.stats.counters(),
            p.stats.counters(),
            "{}: Table-1 counters diverge between sequential and parallel",
            b.name
        );
        let order = |r: &ldbt_learn::RuleSet| -> Vec<String> {
            r.iter().map(Rule::canonical_text).collect()
        };
        assert_eq!(
            order(&s.rules),
            order(&p.rules),
            "{}: rule contents or iteration order diverge",
            b.name
        );
    }
    assert_eq!(seq_cache.len(), par_cache.len(), "memo caches diverge");
}

/// Panic isolation is invisible when nothing panics: with no fault
/// injected, learning is byte-identical with and without `isolate`, and
/// across thread counts — counters and the canonical rule dump both.
#[test]
fn isolation_and_thread_count_do_not_change_learning() {
    let programs = ["mcf", "libquantum"];
    let reference = {
        let cfg = LearnConfig { threads: 1, isolate: false, fault: None, ..LearnConfig::default() };
        learn_programs(&programs, &cfg)
    };
    for threads in [1, 2, 4] {
        for isolate in [false, true] {
            let cfg = LearnConfig { threads, isolate, fault: None, ..LearnConfig::default() };
            let got = learn_programs(&programs, &cfg);
            assert_eq!(reference, got, "learning diverged at threads={threads} isolate={isolate}");
        }
    }
}

/// Block chaining is an invisible optimization: for every translator,
/// with the watchdog off and on, a chained run (`LDBT_NOCHAIN` unset)
/// and an unchained run (`LDBT_NOCHAIN=1`) produce identical guest
/// registers, guest memory, and dynamic-instruction counts.
#[test]
fn chained_execution_is_bit_identical_to_unchained() {
    let src = "
int a[16];
int main() {
  int s = 0;
  for (int i = 0; i < 16; i += 1) { a[i] = i * 7; }
  for (int i = 0; i < 400; i += 1) {
    s = s + a[i & 15];
    if (i & 1) { s = s ^ 9; }
  }
  return s & 0xffff;
}";
    let rules = Arc::new(learn_from_source("chain-det", src, &Options::o2()).unwrap().rules);
    let image = build_arm_image(src, &Options::o2()).unwrap();
    let translators: [(&str, Translator); 3] = [
        ("tcg", Translator::Tcg),
        ("rules", Translator::Rules(Arc::clone(&rules))),
        ("jit", Translator::Jit),
    ];
    for (name, t) in translators {
        for watchdog in [None, Some(3)] {
            let run = |chaining: bool| {
                // Superblocks pinned off: this test compares host_instrs
                // chained vs unchained, which regions deliberately shrink
                // (their own on/off matrix is the test below).
                let mut e = Engine::new(&image, t.clone())
                    .with_chaining(chaining)
                    .with_watchdog(watchdog)
                    .with_fault(None)
                    .with_superblocks(None);
                assert_eq!(e.run(100_000_000), RunOutcome::Halted, "{name} wd={watchdog:?}");
                e
            };
            let chained = run(true);
            let plain = run(false);
            let ctx = format!("{name} wd={watchdog:?}");
            assert!(plain.stats.chained_execs() == 0, "{ctx}: unchained run must not chain");
            for r in ArmReg::ALL {
                assert_eq!(chained.guest_reg(r), plain.guest_reg(r), "{ctx}: {r:?}");
            }
            assert_eq!(chained.stats.guest_dyn(), plain.stats.guest_dyn(), "{ctx}: guest_dyn");
            assert_eq!(
                chained.stats.block_execs(),
                plain.stats.block_execs(),
                "{ctx}: block_execs"
            );
            assert_eq!(
                chained.stats.exec.host_instrs, plain.stats.exec.host_instrs,
                "{ctx}: host_instrs"
            );
            assert_eq!(
                chained.state.mem.first_difference(&plain.state.mem, |_| false),
                None,
                "{ctx}: guest memory diverges"
            );
        }
    }
}

/// Superblock formation is an invisible optimization: for every
/// translator, watchdog off and on, a run with regions enabled
/// (`LDBT_NOSB` unset, low threshold so they actually form) and a run
/// with them disabled produce identical guest registers, guest memory,
/// and — excluding the `sb_*` counters themselves and the host
/// instruction/cycle counts regions exist to shrink — an identical
/// `DbtStats` registry, including identical modeled translation cycles
/// (forming a region never re-translates).
#[test]
fn superblock_execution_is_bit_identical_to_plain() {
    let src = "
int a[16];
int main() {
  int s = 0;
  for (int i = 0; i < 16; i += 1) { a[i] = i * 7; }
  for (int i = 0; i < 400; i += 1) {
    s = s + a[i & 15];
    if (i & 1) { s = s ^ 9; }
  }
  return s & 0xffff;
}";
    let rules = Arc::new(learn_from_source("sb-det", src, &Options::o2()).unwrap().rules);
    let image = build_arm_image(src, &Options::o2()).unwrap();
    let translators: [(&str, Translator); 3] = [
        ("tcg", Translator::Tcg),
        ("rules", Translator::Rules(Arc::clone(&rules))),
        ("jit", Translator::Jit),
    ];
    // Counters legitimately different between the two runs: the sb_*
    // counters (zero on the disabled side by definition) and the host
    // execution work (the optimization target) — which since the region
    // fusion/allocation passes includes the dynamic memory access counts
    // and the pass counters themselves.
    let exempt = [
        "sb_formed",
        "sb_execs",
        "sb_invalidated",
        "host_instrs",
        "exec_cycles",
        "mem_loads",
        "mem_stores",
        "ra_promoted",
        "fuse_elim",
    ];
    for (name, t) in translators {
        for watchdog in [None, Some(3)] {
            let run = |sb: Option<u64>| {
                let mut e = Engine::new(&image, t.clone())
                    .with_chaining(true)
                    .with_watchdog(watchdog)
                    .with_fault(None)
                    .with_superblocks(sb);
                assert_eq!(e.run(100_000_000), RunOutcome::Halted, "{name} wd={watchdog:?}");
                e
            };
            let on = run(Some(8));
            let off = run(None);
            let ctx = format!("{name} wd={watchdog:?}");
            assert!(on.stats.sb_formed() > 0, "{ctx}: hot chains must form regions");
            assert!(on.stats.sb_execs() > 0, "{ctx}: regions must actually run");
            assert_eq!(off.stats.sb_formed(), 0, "{ctx}: disabled side must not form");
            for r in ArmReg::ALL {
                assert_eq!(on.guest_reg(r), off.guest_reg(r), "{ctx}: {r:?}");
            }
            assert_eq!(
                on.state.mem.first_difference(&off.state.mem, |_| false),
                None,
                "{ctx}: guest memory diverges"
            );
            let accounting = |e: &Engine| -> Vec<(&'static str, u64)> {
                e.stats.registry().into_iter().filter(|(n, _)| !exempt.contains(n)).collect()
            };
            assert_eq!(accounting(&on), accounting(&off), "{ctx}: accounting diverges");
            assert!(
                on.stats.exec.host_instrs <= off.stats.exec.host_instrs,
                "{ctx}: regions never add host work"
            );
            let hits = |e: &Engine| e.stats.hit_rules.clone();
            assert_eq!(hits(&on), hits(&off), "{ctx}: hit-rule attribution diverges");
        }
    }
}

/// Region register allocation and guest memory access fusion are pure
/// optimizations: across every translator × watchdog setting, every
/// point of the {RA on/off} × {fusion on/off} matrix produces
/// bit-identical guest registers and guest memory. Both passes only
/// shrink the host work — they never change what the guest computes.
#[test]
fn region_alloc_and_fusion_are_bit_identical_on_off() {
    let src = "
int a[16];
int main() {
  int s = 0;
  for (int i = 0; i < 16; i += 1) { a[i] = i * 7; }
  for (int i = 0; i < 400; i += 1) {
    s = s + a[i & 15];
    if (i & 1) { s = s ^ 9; }
  }
  return s & 0xffff;
}";
    let rules = Arc::new(learn_from_source("ra-det", src, &Options::o2()).unwrap().rules);
    let image = build_arm_image(src, &Options::o2()).unwrap();
    let translators: [(&str, Translator); 3] = [
        ("tcg", Translator::Tcg),
        ("rules", Translator::Rules(Arc::clone(&rules))),
        ("jit", Translator::Jit),
    ];
    for (name, t) in translators {
        for watchdog in [None, Some(3)] {
            let run = |ra: bool, fuse: bool| {
                let mut e = Engine::new(&image, t.clone())
                    .with_chaining(true)
                    .with_watchdog(watchdog)
                    .with_fault(None)
                    .with_superblocks(Some(8))
                    .with_region_alloc(ra)
                    .with_fusion(fuse);
                assert_eq!(
                    e.run(100_000_000),
                    RunOutcome::Halted,
                    "{name} wd={watchdog:?} ra={ra} fuse={fuse}"
                );
                e
            };
            let base = run(false, false);
            assert_eq!(base.stats.ra_promoted(), 0, "{name}: RA must not run when disabled");
            assert_eq!(base.stats.fuse_elim(), 0, "{name}: fusion must not run when disabled");
            for (ra, fuse) in [(true, false), (false, true), (true, true)] {
                let on = run(ra, fuse);
                let ctx = format!("{name} wd={watchdog:?} ra={ra} fuse={fuse}");
                for r in ArmReg::ALL {
                    assert_eq!(on.guest_reg(r), base.guest_reg(r), "{ctx}: {r:?}");
                }
                assert_eq!(
                    on.state.mem.first_difference(&base.state.mem, |_| false),
                    None,
                    "{ctx}: guest memory diverges"
                );
                assert!(
                    on.stats.exec.host_instrs <= base.stats.exec.host_instrs,
                    "{ctx}: the passes never add host work"
                );
                if fuse && name == "rules" {
                    assert!(on.stats.fuse_elim() > 0, "{ctx}: fusion must fire on a hot loop");
                }
            }
        }
    }
}

/// Counterexample-guided repair is invisible on clean runs: with no
/// fault injected, a rules-engine run with `LDBT_REPAIR` semantics on
/// and off produces bit-identical guest registers, guest memory, and an
/// identical `DbtStats` registry — the repair machinery must never
/// engage (no attempts, no quarantines) when the watchdog sees no
/// divergence, whatever the check period.
#[test]
fn repair_toggle_is_bit_identical_on_clean_runs() {
    let src = "
int a[16];
int main() {
  int s = 0;
  for (int i = 0; i < 16; i += 1) { a[i] = i * 7; }
  for (int i = 0; i < 400; i += 1) {
    s = s + a[i & 15];
    if (i & 1) { s = s ^ 9; }
  }
  return s & 0xffff;
}";
    let rules = Arc::new(learn_from_source("repair-det", src, &Options::o2()).unwrap().rules);
    let image = build_arm_image(src, &Options::o2()).unwrap();
    for watchdog in [None, Some(1), Some(3)] {
        let run = |repair: bool| {
            let mut e = Engine::new(&image, Translator::Rules(Arc::clone(&rules)))
                .with_chaining(true)
                .with_watchdog(watchdog)
                .with_fault(None)
                .with_repair(repair);
            assert_eq!(e.run(100_000_000), RunOutcome::Halted, "wd={watchdog:?} repair={repair}");
            e
        };
        let on = run(true);
        let off = run(false);
        let ctx = format!("wd={watchdog:?}");
        for r in ArmReg::ALL {
            assert_eq!(on.guest_reg(r), off.guest_reg(r), "{ctx}: {r:?}");
        }
        assert_eq!(
            on.state.mem.first_difference(&off.state.mem, |_| false),
            None,
            "{ctx}: guest memory diverges"
        );
        assert_eq!(on.stats.registry(), off.stats.registry(), "{ctx}: accounting diverges");
        assert_eq!(on.stats.quarantined_rules(), 0, "{ctx}: clean run must not quarantine");
        assert_eq!(on.stats.wd_repair_attempts(), 0, "{ctx}: clean run must not attempt repair");
    }
}

/// Per-rule attribution and rendered run reports are deterministic:
/// `hit_rules` and the execution profile sort by stable rule key, so two
/// identical runs must agree on contents, order, and the exact report
/// bytes (`hit_rules` was previously a `HashMap`, whose iteration order
/// leaked into Figure 12 and the reports).
#[test]
fn rule_attribution_and_run_report_are_deterministic() {
    let run = || {
        let (rules, stats) = ldbt_core::learn_suite(&Options::o2(), Some("mcf")).unwrap();
        let r = ldbt_core::run_benchmark(
            "mcf",
            Workload::Test,
            ldbt_core::EngineKind::Rules,
            &Options::o2(),
            Some(&rules),
        );
        (r, stats)
    };
    let (a, stats_a) = run();
    let (b, stats_b) = run();
    // hit_rules: identical contents in identical iteration order.
    let dump =
        |r: &ldbt_dbt::DbtStats| r.hit_rules.iter().map(|(k, l)| (*k, *l)).collect::<Vec<_>>();
    assert!(!a.stats.hit_rules.is_empty(), "rules engine records rule hits");
    assert_eq!(dump(&a.stats), dump(&b.stats));
    // The profile is sorted by stable key (strictly increasing = unique).
    assert!(a.profile.rules.windows(2).all(|w| w[0].key < w[1].key), "profile not sorted");
    assert_eq!(a.profile.rules.len(), a.stats.hit_rules.len(), "profile covers every hit rule");
    // Rendered report sections are byte-identical. (The full report's
    // `learn_workers` section snapshots a process-global registry that
    // concurrent tests also bump, so compare the pure per-run sections.)
    assert_eq!(
        ldbt_core::report::bench_report(&a).render(),
        ldbt_core::report::bench_report(&b).render(),
        "bench report bytes diverge between identical runs"
    );
    let dump_learn = |ss: &[ldbt_learn::LearnStats]| -> Vec<String> {
        ss.iter().map(|s| ldbt_core::report::learn_report(s).render()).collect()
    };
    assert_eq!(dump_learn(&stats_a), dump_learn(&stats_b));
    // And the assembled report passes its schema self-check.
    let full = ldbt_core::report::run_report(&[a], &stats_a).render();
    ldbt_obs::selfcheck::check_run_report(&full).unwrap();
}

/// Learn `programs` under `cfg` and return the comparable outcome:
/// per-program Table-1 counters plus the canonical rule dump.
fn learn_programs(programs: &[&str], cfg: &LearnConfig) -> Vec<([usize; 14], Vec<String>)> {
    let mut cache = VerifyCache::new();
    programs
        .iter()
        .map(|name| {
            let b = ldbt_workloads::benchmark(name).unwrap();
            let src = source(b, Workload::Ref);
            let r = learn_from_source_cached(name, &src, &Options::o2(), cfg, &mut cache).unwrap();
            (r.stats.counters(), r.rules.iter().map(Rule::canonical_text).collect())
        })
        .collect()
}
