//! Cross-crate integration tests: the full learn → translate → execute
//! pipeline, validated against the ARM interpreter.

use ldbt_compiler::{link::build_arm_image, OptLevel, Options, Style};
use ldbt_core::{learn_suite, run_benchmark, EngineKind};
use ldbt_dbt::engine::{RunOutcome, Translator};
use ldbt_dbt::Engine;
use ldbt_workloads::Workload;
use std::sync::Arc;

/// Run a source program under the interpreter and all three engines and
/// require identical results; returns the common result.
fn run_everywhere(src: &str, options: &Options, rules: &ldbt_learn::RuleSet) -> u32 {
    let image = build_arm_image(src, options).expect("compiles");
    let mut m = ldbt_arm::ArmMachine::new();
    image.load_into(&mut m.state.mem);
    m.state.regs[15] = image.entry;
    assert_eq!(m.run(200_000_000), ldbt_arm::ArmStop::Halt);
    let want = m.state.reg(ldbt_arm::ArmReg::R0);
    for translator in [
        Translator::Tcg,
        Translator::Jit,
        Translator::Rules(Arc::new(rules.clone())),
        Translator::RulesNoLazyFlags(Arc::new(rules.clone())),
    ] {
        let label = format!("{translator:?}");
        let mut e = Engine::new(&image, translator);
        assert_eq!(e.run(3_000_000_000), RunOutcome::Halted, "{label}");
        assert_eq!(e.guest_reg(ldbt_arm::ArmReg::R0), want, "{label}");
    }
    want
}

#[test]
fn representative_programs_agree_across_engines() {
    let (rules, stats) = learn_suite(&Options::o2(), None).unwrap();
    assert_eq!(stats.len(), 12);
    assert!(rules.len() > 100, "rule corpus: {}", rules.len());
    let programs = [
        "int main() { int s = 0; for (int i = 0; i < 321; i += 1) { s += i ^ 3; } return s & 0xffff; }",
        "int t[40]; int main() { for (int i=0;i<40;i+=1){ t[i]=i*i; } int s=0; for (int i=0;i<40;i+=1){ s += t[i] & 63; } return s; }",
        "int f(int n) { if (n < 2) { return n; } return f(n-1) + f(n-2); } int main() { return f(15); }",
        "int main() { int h = 17; for (int i=0;i<100;i+=1){ h = (h << 3) ^ (h >> 2) ^ i; h = h & 0xfffff; } return h & 255; }",
    ];
    for src in programs {
        run_everywhere(src, &Options::o2(), &rules);
    }
}

#[test]
fn all_guest_configurations_are_translatable() {
    let (rules, _) = learn_suite(&Options::o2(), None).unwrap();
    let src = "
int acc;
int k(int a, int b) {
  int s = a;
  for (int i = 0; i < b; i += 1) { s = (s + i) * 3; s = s & 0xffff; }
  return s;
}
int main() {
  acc = 0;
  for (int r = 0; r < 6; r += 1) { acc += k(r, 9); }
  return acc & 255;
}";
    let mut results = Vec::new();
    for style in [Style::Llvm, Style::Gcc] {
        for level in OptLevel::ALL {
            results.push(run_everywhere(src, &Options { level, style }, &rules));
        }
    }
    assert!(results.windows(2).all(|w| w[0] == w[1]), "{results:?}");
}

#[test]
fn leave_one_out_runs_all_benchmarks_test_workload() {
    // A smoke pass of the Figure 8 protocol on the test workload for
    // three representative benchmarks (full sweeps live in ldbt-bench).
    for name in ["mcf", "libquantum", "astar"] {
        let (rules, _) = learn_suite(&Options::o2(), Some(name)).unwrap();
        let base = run_benchmark(name, Workload::Test, EngineKind::Tcg, &Options::o2(), None);
        let ours =
            run_benchmark(name, Workload::Test, EngineKind::Rules, &Options::o2(), Some(&rules));
        assert_eq!(base.checksum, ours.checksum, "{name}");
        assert!(ours.stats.static_coverage() > 0.2, "{name} coverage");
    }
}

#[test]
fn rules_reduce_dynamic_host_instructions() {
    let (rules, _) = learn_suite(&Options::o2(), Some("hmmer")).unwrap();
    let base = run_benchmark("hmmer", Workload::Ref, EngineKind::Tcg, &Options::o2(), None);
    let ours =
        run_benchmark("hmmer", Workload::Ref, EngineKind::Rules, &Options::o2(), Some(&rules));
    assert!(
        ours.stats.exec.host_instrs < base.stats.exec.host_instrs,
        "{} !< {}",
        ours.stats.exec.host_instrs,
        base.stats.exec.host_instrs
    );
    assert!(ours.speedup_over(&base) > 1.0);
}

#[test]
fn gcc_style_guests_still_benefit() {
    // Figure 9's claim in miniature: LLVM-learned rules on a GCC-built
    // guest.
    let (rules, _) = learn_suite(&Options::o2(), Some("astar")).unwrap();
    let base = run_benchmark("astar", Workload::Ref, EngineKind::Tcg, &Options::gcc(), None);
    let ours =
        run_benchmark("astar", Workload::Ref, EngineKind::Rules, &Options::gcc(), Some(&rules));
    assert_eq!(base.checksum, ours.checksum);
    assert!(ours.stats.dynamic_coverage() > 0.1, "cross-compiler coverage");
}
